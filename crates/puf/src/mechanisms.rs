//! The three evaluated PUF mechanisms.

mod codic_sig;
mod latency_puf;
mod prelat;

pub use codic_sig::CodicSigPuf;
pub use latency_puf::LatencyPuf;
pub use prelat::PreLatPuf;

use crate::challenge::{Challenge, Response};
use crate::chip::ChipModel;

/// Environmental conditions of one evaluation (§6.1.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Operating temperature in °C.
    pub temperature_c: f64,
    /// Accelerated-aging stress hours at 125 °C (0 = fresh device).
    pub aging_hours: f64,
}

impl Environment {
    /// The paper's reference condition: 30 °C, fresh device.
    #[must_use]
    pub fn nominal() -> Self {
        Environment {
            temperature_c: 30.0,
            aging_hours: 0.0,
        }
    }

    /// A nominal-temperature environment after `hours` of accelerated
    /// aging (the paper ages devices for 8 h at 125 °C).
    #[must_use]
    pub fn aged(hours: f64) -> Self {
        Environment {
            aging_hours: hours,
            ..Environment::nominal()
        }
    }

    /// Temperature delta from the 30 °C reference.
    #[must_use]
    pub fn delta_t(&self) -> f64 {
        self.temperature_c - 30.0
    }
}

/// A DRAM PUF mechanism: maps (chip, challenge, environment) to a response.
///
/// `nonce` individualizes repeated evaluations of the same challenge (the
/// per-evaluation noise draw); two calls with the same nonce return the
/// same response. Mechanisms are `Sync` so population sweeps can share one
/// instance across rayon worker threads.
pub trait PufMechanism: Sync {
    /// The mechanism's display name.
    fn name(&self) -> &'static str;

    /// Evaluates one challenge.
    fn evaluate(
        &self,
        chip: &ChipModel,
        challenge: &Challenge,
        env: &Environment,
        nonce: u64,
    ) -> Response;

    /// Evaluates many challenges of one chip in parallel, challenge `i`
    /// using nonce `base_nonce + i`. The default implementation fans the
    /// (pure, nonce-indexed) evaluations out across rayon worker threads;
    /// results are returned in input order and are independent of the
    /// thread count.
    fn evaluate_many(
        &self,
        chip: &ChipModel,
        challenges: &[Challenge],
        env: &Environment,
        base_nonce: u64,
    ) -> Vec<Response> {
        use rayon::prelude::*;
        challenges
            .iter()
            .enumerate()
            .map(|(i, ch)| (i as u64, *ch))
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(i, ch)| self.evaluate(chip, &ch, env, base_nonce + i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_environment_is_30c_fresh() {
        let e = Environment::nominal();
        assert_eq!(e.temperature_c, 30.0);
        assert_eq!(e.aging_hours, 0.0);
        assert_eq!(e.delta_t(), 0.0);
    }

    #[test]
    fn aged_environment_keeps_temperature() {
        let e = Environment::aged(8.0);
        assert_eq!(e.temperature_c, 30.0);
        assert_eq!(e.aging_hours, 8.0);
    }

    #[test]
    fn evaluate_many_matches_serial_evaluations() {
        use crate::chip::{Vendor, VoltageClass};
        let chip = ChipModel::new(0, Vendor::A, 4, 1600, VoltageClass::Ddr3l, 0xFEED);
        let puf = CodicSigPuf;
        let env = Environment::nominal();
        let challenges: Vec<Challenge> = (0..8).map(Challenge::segment).collect();
        let many = puf.evaluate_many(&chip, &challenges, &env, 100);
        for (i, ch) in challenges.iter().enumerate() {
            assert_eq!(many[i], puf.evaluate(&chip, ch, &env, 100 + i as u64));
        }
    }
}
