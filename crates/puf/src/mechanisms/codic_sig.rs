//! The CODIC-sig PUF (paper §5.1, §6.1).
//!
//! CODIC-sig sets every cell of the target segment to `Vdd/2`; the next
//! activation amplifies each cell according to sense-amplifier process
//! variation. Most cells resolve to the majority value; the 0.01 %–0.22 %
//! minority cells form the response. The mechanism is data-independent and
//! needs no filtering because the same cells resolve the same way on
//! almost every evaluation.

use codic_core::ops::{CodicOp, InDramMechanism, RowRegion, VariantId};

use crate::challenge::{Challenge, Response};
use crate::chip::ChipModel;
use crate::hash;
use crate::mechanisms::{Environment, PufMechanism};

/// The CODIC-sig PUF.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodicSigPuf;

impl CodicSigPuf {
    /// The row region a challenge's segment covers — what the signature
    /// preparation sweeps before read-out.
    #[must_use]
    pub fn challenge_region(challenge: &Challenge) -> RowRegion {
        RowRegion::covering_bytes(challenge.segment_addr, u64::from(challenge.size_bytes))
    }
    /// Per-cell drop probability at environment `env`: the chance a
    /// minority cell resolves to the majority value on this evaluation.
    /// Tiny at nominal conditions (the paper's 99.72 %+ response
    /// repeatability) and growing mildly with temperature.
    #[must_use]
    pub fn drop_probability(chip: &ChipModel, env: &Environment) -> f64 {
        let temp_factor = 1.0 + 3.0 * (env.delta_t().abs() / 55.0);
        // Aging barely affects CODIC-sig (§6.1.1: intra-Jaccard stays ≈ 1).
        let age_factor = 1.0 + 0.02 * (env.aging_hours / 8.0);
        chip.codic_noise_floor() * temp_factor * age_factor
    }
}

impl InDramMechanism for CodicSigPuf {
    fn name(&self) -> &str {
        "CODIC-sig PUF"
    }

    /// One CODIC-sig command per row: the signature preparation the
    /// controller issues before the read-out pass. CODIC-sig is
    /// destructive (it erases the segment's contents), so the device's
    /// safe-range policy confines where evaluations may run (§4.4).
    fn plan(&self, region: RowRegion) -> Vec<CodicOp> {
        region
            .row_addrs()
            .map(|addr| CodicOp::command(VariantId::Sig, addr))
            .collect()
    }
}

impl PufMechanism for CodicSigPuf {
    fn name(&self) -> &'static str {
        "CODIC-sig PUF"
    }

    fn evaluate(
        &self,
        chip: &ChipModel,
        challenge: &Challenge,
        env: &Environment,
        nonce: u64,
    ) -> Response {
        let drop_p = Self::drop_probability(chip, env);
        // False inclusions are an order of magnitude rarer than drops.
        let add_p = drop_p * 0.1 * chip.minority_fraction();
        let first = challenge.first_cell();
        let mut cells = Vec::new();
        for i in 0..challenge.cells() {
            let cell = first + i;
            let noise = hash::to_unit(hash::combine(chip.seed(), 0x515, cell, nonce));
            if chip.codic_minority_cell(cell) {
                if noise >= drop_p {
                    cells.push(i as u32);
                }
            } else if noise < add_p {
                cells.push(i as u32);
            }
        }
        Response::new(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{Vendor, VoltageClass};

    fn chip() -> ChipModel {
        ChipModel::new(0, Vendor::A, 4, 1600, VoltageClass::Ddr3l, 0xABCD)
    }

    #[test]
    fn same_nonce_is_deterministic() {
        let c = chip();
        let ch = Challenge::segment(0);
        let puf = CodicSigPuf;
        let a = puf.evaluate(&c, &ch, &Environment::nominal(), 7);
        let b = puf.evaluate(&c, &ch, &Environment::nominal(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_evaluations_are_nearly_identical() {
        let c = chip();
        let ch = Challenge::segment(1);
        let puf = CodicSigPuf;
        let a = puf.evaluate(&c, &ch, &Environment::nominal(), 1);
        let b = puf.evaluate(&c, &ch, &Environment::nominal(), 2);
        assert!(!a.is_empty());
        assert!(a.jaccard(&b) > 0.98, "J = {}", a.jaccard(&b));
    }

    #[test]
    fn different_segments_are_unique() {
        let c = chip();
        let puf = CodicSigPuf;
        let a = puf.evaluate(&c, &Challenge::segment(0), &Environment::nominal(), 1);
        let b = puf.evaluate(&c, &Challenge::segment(9), &Environment::nominal(), 1);
        assert!(a.jaccard(&b) < 0.05, "J = {}", a.jaccard(&b));
    }

    #[test]
    fn temperature_only_mildly_degrades_stability() {
        let c = chip();
        let ch = Challenge::segment(2);
        let puf = CodicSigPuf;
        let cold = puf.evaluate(&c, &ch, &Environment::nominal(), 1);
        let hot_env = Environment {
            temperature_c: 85.0,
            aging_hours: 0.0,
        };
        let hot = puf.evaluate(&c, &ch, &hot_env, 2);
        assert!(cold.jaccard(&hot) > 0.95, "J = {}", cold.jaccard(&hot));
    }

    #[test]
    fn aging_leaves_responses_stable() {
        let c = chip();
        let ch = Challenge::segment(3);
        let puf = CodicSigPuf;
        let fresh = puf.evaluate(&c, &ch, &Environment::nominal(), 1);
        let aged = puf.evaluate(&c, &ch, &Environment::aged(8.0), 2);
        assert!(fresh.jaccard(&aged) > 0.95);
    }

    #[test]
    fn challenge_plans_one_sig_command_per_row() {
        let ch = Challenge::segment(3);
        let region = CodicSigPuf::challenge_region(&ch);
        assert_eq!(region.rows, 1, "an 8 KB segment is one row");
        let plan = InDramMechanism::plan(&CodicSigPuf, region);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0], CodicOp::command(VariantId::Sig, 3 * 8192));
        assert!(plan[0].is_destructive(), "sig preparation erases the row");
    }

    #[test]
    fn evaluation_campaign_issues_through_the_device() {
        use codic_core::device::{CodicDevice, DeviceConfig};
        use codic_dram::{DramGeometry, TimingParams};
        // The §6.1 methodology: refresh disabled, evaluations confined to
        // the system-defined safe segment range.
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_safe_range(0..64 * 8192)
            .with_refresh(false);
        let mut device = CodicDevice::new(config);
        let ops: Vec<CodicOp> = (0..4)
            .flat_map(|i| {
                InDramMechanism::plan(
                    &CodicSigPuf,
                    CodicSigPuf::challenge_region(&Challenge::segment(i)),
                )
            })
            .collect();
        let outcome = device.execute_all(&ops).unwrap();
        assert_eq!(outcome.ops(), 4);
        assert_eq!(device.stats().row_ops, 4);
        // A challenge outside the safe range is rejected before the bus.
        let err = device
            .execute_all(&InDramMechanism::plan(
                &CodicSigPuf,
                CodicSigPuf::challenge_region(&Challenge::segment(1000)),
            ))
            .unwrap_err();
        assert!(matches!(
            err,
            codic_core::CodicError::AddressOutOfRange { .. }
        ));
        assert_eq!(device.stats().row_ops, 4);
    }

    #[test]
    fn response_size_tracks_minority_fraction() {
        let c = chip();
        let ch = Challenge::segment(0);
        let r = CodicSigPuf.evaluate(&c, &ch, &Environment::nominal(), 1);
        let expected = c.minority_fraction() * ch.cells() as f64;
        let n = r.len() as f64;
        assert!(
            n > expected * 0.5 && n < expected * 1.5,
            "n = {n}, expected ≈ {expected}"
        );
    }
}
