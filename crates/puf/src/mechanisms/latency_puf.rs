//! The DRAM Latency PUF baseline (Kim et al., HPCA 2018; paper §6.1.1).
//!
//! Accesses with `tRCD = 2.5 ns` make cells with weak charge-sharing
//! margins fail. The per-read failure behaviour is noisy, so the original
//! mechanism reads each segment 100 times and keeps only cells failing
//! more than 90 reads. Failure margins shift strongly with temperature,
//! which is why this PUF's responses degrade across temperature (Figure 6).

use crate::challenge::{Challenge, Response};
use crate::chip::ChipModel;
use crate::filter::RepeatFilter;
use crate::hash;
use crate::mechanisms::{Environment, PufMechanism};

/// The DRAM Latency PUF with its standard 90-of-100 filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPuf {
    /// The repeat filter (reads, threshold); the paper uses 100/90.
    pub filter: RepeatFilter,
}

impl Default for LatencyPuf {
    fn default() -> Self {
        LatencyPuf {
            filter: RepeatFilter::new(100, 90),
        }
    }
}

/// Weakness threshold at 30 °C, in standard deviations: cells beyond
/// ≈ 3.3 σ fail reliably (≈ 0.05 % of cells).
const THETA_30C: f64 = 3.3;

/// Threshold shift per °C: the paper's Figure 6 shows latency-PUF
/// responses decorrelating within tens of degrees.
const THETA_PER_DEGC: f64 = 0.012;

/// Width of the marginal zone in sigma: cells within it fail on some reads
/// only, producing the dispersed intra-Jaccard of Figure 5.
const MARGIN_SIGMA: f64 = 0.18;

impl LatencyPuf {
    fn fail_probability(&self, weakness: f64, env: &Environment) -> f64 {
        let theta = THETA_30C - THETA_PER_DEGC * env.delta_t();
        // Logistic margin around the threshold.
        1.0 / (1.0 + (-(weakness - theta) / MARGIN_SIGMA).exp())
    }
}

impl PufMechanism for LatencyPuf {
    fn name(&self) -> &'static str {
        "DRAM Latency PUF"
    }

    fn evaluate(
        &self,
        chip: &ChipModel,
        challenge: &Challenge,
        env: &Environment,
        nonce: u64,
    ) -> Response {
        let first = challenge.first_cell();
        let mut cells = Vec::new();
        for i in 0..challenge.cells() {
            let cell = first + i;
            let weakness = chip.latency_weakness(cell);
            // Cells far from the margin can be resolved without sampling.
            let q = self.fail_probability(weakness, env);
            if q < 1e-4 {
                continue;
            }
            if q > 1.0 - 1e-4 {
                cells.push(i as u32);
                continue;
            }
            let mut fails = 0u32;
            for read in 0..self.filter.reads() {
                let h = hash::combine(chip.seed(), 0x7A7 ^ u64::from(read), cell, nonce);
                if hash::to_unit(h) < q {
                    fails += 1;
                }
            }
            if self.filter.keeps(fails) {
                cells.push(i as u32);
            }
        }
        Response::new(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{Vendor, VoltageClass};

    fn chip() -> ChipModel {
        ChipModel::new(1, Vendor::B, 2, 1333, VoltageClass::Ddr3, 0xBEEF)
    }

    #[test]
    fn responses_are_reasonably_stable_at_fixed_temperature() {
        let c = chip();
        let ch = Challenge::segment(0);
        let puf = LatencyPuf::default();
        let a = puf.evaluate(&c, &ch, &Environment::nominal(), 1);
        let b = puf.evaluate(&c, &ch, &Environment::nominal(), 2);
        assert!(!a.is_empty());
        let j = a.jaccard(&b);
        assert!(j > 0.5, "J = {j}");
    }

    #[test]
    fn responses_are_noisier_than_codic_sig() {
        let c = chip();
        let ch = Challenge::segment(0);
        let puf = LatencyPuf::default();
        let js: Vec<f64> = (0..8)
            .map(|k| {
                let a = puf.evaluate(&c, &ch, &Environment::nominal(), 2 * k);
                let b = puf.evaluate(&c, &ch, &Environment::nominal(), 2 * k + 1);
                a.jaccard(&b)
            })
            .collect();
        let mean = js.iter().sum::<f64>() / js.len() as f64;
        assert!(mean < 0.999, "latency PUF must show residual noise: {mean}");
    }

    #[test]
    fn temperature_shifts_the_response_set() {
        let c = chip();
        let ch = Challenge::segment(1);
        let puf = LatencyPuf::default();
        let base = puf.evaluate(&c, &ch, &Environment::nominal(), 1);
        let hot = puf.evaluate(
            &c,
            &ch,
            &Environment {
                temperature_c: 85.0,
                aging_hours: 0.0,
            },
            2,
        );
        let j = base.jaccard(&hot);
        assert!(
            j < 0.6,
            "J = {j}: latency PUF must be temperature-sensitive"
        );
    }

    #[test]
    fn different_segments_are_unique() {
        let c = chip();
        let puf = LatencyPuf::default();
        let a = puf.evaluate(&c, &Challenge::segment(0), &Environment::nominal(), 1);
        let b = puf.evaluate(&c, &Challenge::segment(5), &Environment::nominal(), 1);
        assert!(a.jaccard(&b) < 0.05);
    }

    #[test]
    fn fail_probability_is_monotone_in_weakness() {
        let puf = LatencyPuf::default();
        let env = Environment::nominal();
        assert!(puf.fail_probability(4.0, &env) > puf.fail_probability(3.0, &env));
        assert!(puf.fail_probability(0.0, &env) < 1e-4);
    }
}
