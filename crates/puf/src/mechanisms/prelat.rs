//! The PreLatPUF baseline (Talukder et al., IEEE Access 2019; §6.1.1).
//!
//! Reduced-precharge-latency (`tRP = 2.5 ns`) failures are dominated by
//! bitline/column-driver strength, a *design-induced* property: the same
//! bitline positions fail in every segment of a chip. That makes responses
//! extremely stable (best temperature robustness in Figure 6) but poorly
//! unique — different segments of the same chip share failing positions,
//! dispersing the inter-Jaccard distribution away from zero (Figure 5).

use crate::challenge::{Challenge, Response};
use crate::chip::ChipModel;
use crate::hash;
use crate::mechanisms::{Environment, PufMechanism};

/// The PreLatPUF.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreLatPuf;

/// Per-evaluation drop probability (nearly temperature-independent).
const DROP_P: f64 = 3.0e-3;

/// Probability that a cell on a weak bitline participates in the failure
/// (row-dependent modulation — the only per-segment component).
const CELL_PARTICIPATION: f64 = 0.5;

impl PufMechanism for PreLatPuf {
    fn name(&self) -> &'static str {
        "PreLatPUF"
    }

    fn evaluate(
        &self,
        chip: &ChipModel,
        challenge: &Challenge,
        env: &Environment,
        nonce: u64,
    ) -> Response {
        // Temperature has only a token effect (Figure 6: flat).
        let drop_p = DROP_P * (1.0 + 0.2 * env.delta_t().abs() / 55.0);
        let first = challenge.first_cell();
        let mut cells = Vec::new();
        for i in 0..challenge.cells() {
            let cell = first + i;
            if !chip.weak_bitline(cell) {
                continue;
            }
            let participates =
                hash::to_unit(hash::combine(chip.seed(), 0x93EA, cell, 3)) < CELL_PARTICIPATION;
            if !participates {
                continue;
            }
            let noise = hash::to_unit(hash::combine(chip.seed(), 0x93EB, cell, nonce));
            if noise >= drop_p {
                cells.push(i as u32);
            }
        }
        Response::new(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{Vendor, VoltageClass};

    fn chip() -> ChipModel {
        ChipModel::new(2, Vendor::C, 4, 1600, VoltageClass::Ddr3l, 0xFEED)
    }

    #[test]
    fn responses_are_very_stable() {
        let c = chip();
        let ch = Challenge::segment(0);
        let a = PreLatPuf.evaluate(&c, &ch, &Environment::nominal(), 1);
        let b = PreLatPuf.evaluate(&c, &ch, &Environment::nominal(), 2);
        assert!(!a.is_empty());
        assert!(a.jaccard(&b) > 0.98, "J = {}", a.jaccard(&b));
    }

    #[test]
    fn temperature_barely_matters() {
        let c = chip();
        let ch = Challenge::segment(1);
        let base = PreLatPuf.evaluate(&c, &ch, &Environment::nominal(), 1);
        let hot = PreLatPuf.evaluate(
            &c,
            &ch,
            &Environment {
                temperature_c: 85.0,
                aging_hours: 0.0,
            },
            2,
        );
        assert!(base.jaccard(&hot) > 0.97, "J = {}", base.jaccard(&hot));
    }

    #[test]
    fn same_chip_segments_share_failing_positions() {
        // The design-induced correlation: inter-Jaccard far from zero.
        let c = chip();
        let a = PreLatPuf.evaluate(&c, &Challenge::segment(0), &Environment::nominal(), 1);
        let b = PreLatPuf.evaluate(&c, &Challenge::segment(7), &Environment::nominal(), 1);
        let j = a.jaccard(&b);
        assert!(
            j > 0.15,
            "J = {j}: PreLat responses must overlap across segments"
        );
        assert!(j < 0.9, "J = {j}: but not be identical");
    }

    #[test]
    fn same_design_chips_share_responses_but_different_vendors_do_not() {
        let a_chip = chip();
        // Same vendor/density/speed: same column-driver design.
        let same_design = ChipModel::new(3, Vendor::C, 4, 1600, VoltageClass::Ddr3l, 0xD00D);
        // Different vendor: different design.
        let other_vendor = ChipModel::new(4, Vendor::A, 4, 1600, VoltageClass::Ddr3l, 0xD11D);
        let ch = Challenge::segment(0);
        let a = PreLatPuf.evaluate(&a_chip, &ch, &Environment::nominal(), 1);
        let b = PreLatPuf.evaluate(&same_design, &ch, &Environment::nominal(), 1);
        let c = PreLatPuf.evaluate(&other_vendor, &ch, &Environment::nominal(), 1);
        assert!(a.jaccard(&b) > 0.15, "same design: J = {}", a.jaccard(&b));
        assert!(a.jaccard(&c) < 0.05, "other vendor: J = {}", a.jaccard(&c));
    }
}
