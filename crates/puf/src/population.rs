//! The evaluated chip population: 15 modules / 136 chips (paper Table 12).

use crate::chip::{ChipModel, Vendor, VoltageClass};
use crate::hash;

/// One DDR3 module of the evaluated population.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name as in Table 12 (M1–M15).
    pub name: &'static str,
    /// Manufacturer.
    pub vendor: Vendor,
    /// Rank count.
    pub ranks: u32,
    /// Per-chip capacity in gigabits.
    pub chip_gbit: u32,
    /// Data rate in MT/s.
    pub freq_mts: u32,
    /// Voltage class.
    pub voltage: VoltageClass,
    /// The module's chips.
    pub chips: Vec<ChipModel>,
}

/// Table 12 row descriptors: (name, vendor, chips, ranks, Gb, MT/s, class).
const TABLE12: [(&str, Vendor, u32, u32, u32, u32, VoltageClass); 15] = [
    ("M1", Vendor::A, 8, 1, 4, 1600, VoltageClass::Ddr3l),
    ("M2", Vendor::A, 8, 1, 4, 1600, VoltageClass::Ddr3l),
    ("M3", Vendor::A, 8, 1, 4, 1600, VoltageClass::Ddr3l),
    ("M4", Vendor::A, 8, 1, 4, 1600, VoltageClass::Ddr3l),
    ("M5", Vendor::A, 8, 1, 4, 1600, VoltageClass::Ddr3),
    ("M6", Vendor::A, 8, 1, 4, 1600, VoltageClass::Ddr3),
    ("M7", Vendor::A, 8, 1, 4, 1600, VoltageClass::Ddr3),
    ("M8", Vendor::A, 8, 1, 4, 1600, VoltageClass::Ddr3),
    ("M9", Vendor::B, 16, 2, 2, 1333, VoltageClass::Ddr3),
    ("M10", Vendor::B, 16, 2, 2, 1333, VoltageClass::Ddr3),
    ("M11", Vendor::B, 8, 1, 4, 1600, VoltageClass::Ddr3l),
    ("M12", Vendor::C, 8, 1, 4, 1600, VoltageClass::Ddr3l),
    ("M13", Vendor::C, 8, 1, 4, 1600, VoltageClass::Ddr3l),
    ("M14", Vendor::C, 8, 1, 4, 1600, VoltageClass::Ddr3l),
    ("M15", Vendor::C, 8, 1, 4, 1600, VoltageClass::Ddr3l),
];

/// Builds the 136-chip population of the paper's Table 12. `seed`
/// individualizes process variation while keeping the run reproducible.
#[must_use]
pub fn paper_population(seed: u64) -> Vec<Module> {
    let mut chip_id = 0u32;
    TABLE12
        .iter()
        .map(|&(name, vendor, chips, ranks, gbit, freq, voltage)| {
            let chips = (0..chips)
                .map(|i| {
                    let chip_seed = hash::combine(seed, u64::from(chip_id), u64::from(i), 0xC41B);
                    let chip = ChipModel::new(chip_id, vendor, gbit, freq, voltage, chip_seed);
                    chip_id += 1;
                    chip
                })
                .collect();
            Module {
                name,
                vendor,
                ranks,
                chip_gbit: gbit,
                freq_mts: freq,
                voltage,
                chips,
            }
        })
        .collect()
}

/// Flattens a population into chip references.
#[must_use]
pub fn all_chips(population: &[Module]) -> Vec<&ChipModel> {
    population.iter().flat_map(|m| m.chips.iter()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_has_136_chips_in_15_modules() {
        let p = paper_population(1);
        assert_eq!(p.len(), 15);
        assert_eq!(all_chips(&p).len(), 136);
    }

    #[test]
    fn vendor_chip_counts_match_table_3() {
        let p = paper_population(1);
        let count = |v: Vendor| all_chips(&p).iter().filter(|c| c.vendor == v).count();
        assert_eq!(count(Vendor::A), 64);
        assert_eq!(count(Vendor::B), 40);
        assert_eq!(count(Vendor::C), 32);
    }

    #[test]
    fn voltage_split_matches_table_3() {
        let p = paper_population(1);
        let ddr3l = all_chips(&p)
            .iter()
            .filter(|c| c.voltage == VoltageClass::Ddr3l)
            .count();
        // Table 3: 32 + 8 + 32 = 72 DDR3L chips, 64 DDR3 chips.
        assert_eq!(ddr3l, 72);
        assert_eq!(136 - ddr3l, 64);
    }

    #[test]
    fn chip_ids_are_unique_and_seeds_differ() {
        let p = paper_population(1);
        let chips = all_chips(&p);
        let mut ids: Vec<u32> = chips.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 136);
        let mut seeds: Vec<u64> = chips.iter().map(|c| c.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 136);
    }

    #[test]
    fn population_is_reproducible_but_seed_sensitive() {
        assert_eq!(paper_population(5), paper_population(5));
        assert_ne!(
            paper_population(5)[0].chips[0].seed(),
            paper_population(6)[0].chips[0].seed()
        );
    }
}
