//! A CODIC-based true random number generator (paper §5.3.1).
//!
//! The paper notes CODIC "enables new TRNGs that exploit new failure
//! mechanisms": sense amplifiers whose offset is close to zero resolve a
//! precharged bitline metastably — thermal noise decides each evaluation.
//! This module harvests those marginal sense amplifiers with repeated
//! CODIC-sigsa commands: a profiling pass finds cells whose outcome flips
//! across evaluations, and the TRNG then concatenates their outcomes.

use crate::chip::ChipModel;
use crate::hash;

/// Fraction of sense amplifiers whose offset is small enough to be
/// thermally metastable under CODIC-sigsa (|offset| within a fraction of
/// the thermal noise scale).
pub const METASTABLE_FRACTION: f64 = 0.002;

/// Profiles `cells` consecutive cells of a chip and returns the indices
/// usable as TRNG sources (marginal sense amplifiers).
#[must_use]
pub fn profile_trng_cells(chip: &ChipModel, cells: u64) -> Vec<u64> {
    (0..cells)
        .filter(|&c| hash::to_unit(hash::combine(chip.seed(), 0x7396, c, 0)) < METASTABLE_FRACTION)
        .collect()
}

/// Draws `bits` random bits by repeatedly issuing CODIC-sigsa over the
/// profiled cells. Each evaluation of a marginal cell resolves by thermal
/// noise (modelled as a fresh unbiased draw per `(cell, evaluation)`).
#[must_use]
pub fn generate_bits(chip: &ChipModel, trng_cells: &[u64], bits: usize) -> Vec<u8> {
    assert!(!trng_cells.is_empty(), "profile at least one marginal cell");
    let mut out = Vec::with_capacity(bits);
    let mut evaluation = 0u64;
    while out.len() < bits {
        evaluation += 1;
        for &cell in trng_cells {
            if out.len() >= bits {
                break;
            }
            let draw = hash::to_unit(hash::combine(chip.seed(), 0x7397, cell, evaluation));
            out.push(u8::from(draw < 0.5));
        }
    }
    out
}

/// Throughput model: bits per second for a TRNG built on `trng_cells`
/// within one 8 KB segment, at one CODIC-sigsa command (+ readout pass)
/// per evaluation. Uses the Table 4 read-pass cost.
#[must_use]
pub fn throughput_bits_per_s(trng_cells: usize, timing: &codic_dram::TimingParams) -> f64 {
    let pass_s = crate::eval_time::read_pass_ms(8192, timing) * 1e-3;
    trng_cells as f64 / pass_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{Vendor, VoltageClass};

    fn chip() -> ChipModel {
        ChipModel::new(0, Vendor::A, 4, 1600, VoltageClass::Ddr3l, 0x7396)
    }

    #[test]
    fn profiling_finds_a_sparse_stable_set() {
        let c = chip();
        let cells = profile_trng_cells(&c, 65536);
        assert!(!cells.is_empty());
        let frac = cells.len() as f64 / 65536.0;
        assert!(frac < 0.01, "marginal fraction {frac}");
        assert_eq!(cells, profile_trng_cells(&c, 65536), "profiling is stable");
    }

    #[test]
    fn generated_bits_pass_basic_nist_tests() {
        let c = chip();
        let cells = profile_trng_cells(&c, 65536);
        let bits = generate_bits(&c, &cells, 100_000);
        assert_eq!(bits.len(), 100_000);
        assert!(codic_nist::monobit::test(&bits).passed());
        assert!(codic_nist::runs::test(&bits).passed());
        assert!(codic_nist::block_frequency::test(&bits).passed());
    }

    #[test]
    fn successive_evaluations_differ() {
        let c = chip();
        let cells = profile_trng_cells(&c, 65536);
        let a = generate_bits(&c, &cells, 1000);
        let b = generate_bits(&c, &cells[..cells.len() - 1], 1000);
        assert_ne!(a, b);
    }

    #[test]
    fn throughput_exceeds_the_puf_rate() {
        // Dozens of marginal cells per segment, ~0.88 ms per evaluation:
        // tens of kbit/s, far above retention-based TRNGs.
        let t = codic_dram::TimingParams::ddr3_1600_11();
        let bps = throughput_bits_per_s(100, &t);
        assert!(bps > 10_000.0, "throughput {bps} b/s");
    }

    #[test]
    #[should_panic(expected = "at least one marginal cell")]
    fn empty_profile_is_rejected() {
        let _ = generate_bits(&chip(), &[], 10);
    }
}
