//! Property-based tests of the PUF framework invariants.

use codic_puf::challenge::Response;
use codic_puf::mechanisms::{CodicSigPuf, Environment, PufMechanism};
use codic_puf::population::paper_population;
use codic_puf::Challenge;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn jaccard_is_symmetric_and_bounded(
        a in proptest::collection::vec(0u32..5000, 0..200),
        b in proptest::collection::vec(0u32..5000, 0..200),
    ) {
        let ra = Response::new(a);
        let rb = Response::new(b);
        let j_ab = ra.jaccard(&rb);
        let j_ba = rb.jaccard(&ra);
        prop_assert!((j_ab - j_ba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0).contains(&j_ab), "bounded");
        prop_assert_eq!(ra.jaccard(&ra.clone()), 1.0, "reflexive");
    }

    #[test]
    fn responses_are_sorted_deduped_and_in_segment(
        cells in proptest::collection::vec(0u32..65536, 0..300),
    ) {
        let r = Response::new(cells);
        let s = r.cells();
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
    }

    #[test]
    fn codic_sig_is_deterministic_per_nonce(seg in 0u64..32, nonce in 0u64..1000) {
        let pop = paper_population(1);
        let chip = &pop[0].chips[0];
        let ch = Challenge::segment(seg);
        let a = CodicSigPuf.evaluate(chip, &ch, &Environment::nominal(), nonce);
        let b = CodicSigPuf.evaluate(chip, &ch, &Environment::nominal(), nonce);
        prop_assert_eq!(a, b);
    }
}
