//! Secure-deallocation study (the CODIC paper's Appendix A).
//!
//! Secure deallocation zeroes memory at the moment it is freed. The paper
//! compares a software implementation (the OS writes zeros through the
//! CPU) against hardware row operations — LISA-clone, RowClone, and
//! CODIC-det — on six memory-allocation-intensive benchmarks (Table 8),
//! single-core (Figure 8) and in 4-core mixes with non-intensive partners
//! (Figure 9, Table 9).
//!
//! The paper generates traces with Pin and Bochs; we substitute seeded
//! synthetic trace generators parameterized per benchmark by allocation
//! intensity, footprint, and locality ([`workload`]).
//!
//! # Example
//!
//! ```no_run
//! use codic_secdealloc::workload::Benchmark;
//! use codic_secdealloc::mechanism::ZeroingMechanism;
//! use codic_secdealloc::sim::single_core_comparison;
//!
//! let r = single_core_comparison(Benchmark::Malloc, 200, 7);
//! let codic = r.speedup(ZeroingMechanism::Codic);
//! assert!(codic > 1.0, "CODIC must beat software zeroing");
//! ```

pub mod mechanism;
pub mod mixes;
pub mod sim;
pub mod workload;

pub use mechanism::ZeroingMechanism;
pub use workload::Benchmark;
