//! The compared secure-deallocation mechanisms (Appendix A).

use codic_dram::request::RowOpKind;
use codic_dram::trace::TraceOp;
use codic_dram::TimingParams;

use crate::workload::{AppTrace, LINES_PER_PAGE, PAGE_BYTES};

/// How freed memory is zeroed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZeroingMechanism {
    /// Software: the OS writes zeros through the CPU (Chow et al.'s
    /// secure deallocation) — the study's baseline.
    Software,
    /// LISA-clone copies from a zero row.
    LisaClone,
    /// RowClone copies from a zero row.
    RowClone,
    /// CODIC-det drives every cell to zero with one command per row.
    Codic,
}

impl ZeroingMechanism {
    /// The mechanisms in Figure 8's bar order.
    pub const ALL: [ZeroingMechanism; 4] = [
        ZeroingMechanism::Software,
        ZeroingMechanism::LisaClone,
        ZeroingMechanism::RowClone,
        ZeroingMechanism::Codic,
    ];

    /// The hardware mechanisms only.
    pub const HARDWARE: [ZeroingMechanism; 3] = [
        ZeroingMechanism::LisaClone,
        ZeroingMechanism::RowClone,
        ZeroingMechanism::Codic,
    ];

    /// Display name as in Figure 8.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ZeroingMechanism::Software => "software",
            ZeroingMechanism::LisaClone => "LISA-clone",
            ZeroingMechanism::RowClone => "RowClone",
            ZeroingMechanism::Codic => "CODIC",
        }
    }

    /// Row-operation parameters for the hardware mechanisms:
    /// (kind, bank-busy cycles). Matches the cold-boot study's costs.
    #[must_use]
    pub fn row_op(self, t: &TimingParams) -> Option<(RowOpKind, u32)> {
        match self {
            ZeroingMechanism::Software => None,
            ZeroingMechanism::Codic => Some((RowOpKind::Codic, t.t_rc)),
            ZeroingMechanism::RowClone => Some((RowOpKind::RowClone, 2 * t.t_ras + t.t_rp)),
            ZeroingMechanism::LisaClone => Some((
                RowOpKind::LisaClone,
                2 * t.t_ras + t.t_rp + t.cycles_from_ns(70.0),
            )),
        }
    }

    /// Builds the full core trace: the application ops with the zeroing
    /// work this mechanism requires spliced in at each deallocation point.
    #[must_use]
    pub fn instrument(self, app: &AppTrace, timing: &TimingParams) -> Vec<TraceOp> {
        let mut out = Vec::with_capacity(app.ops.len() + app.deallocs.len() * 64);
        let mut next_dealloc = 0usize;
        for (pos, &op) in app.ops.iter().enumerate() {
            while next_dealloc < app.deallocs.len() && app.deallocs[next_dealloc].trace_pos == pos {
                self.emit_zeroing(&app.deallocs[next_dealloc], timing, &mut out);
                next_dealloc += 1;
            }
            out.push(op);
        }
        for d in &app.deallocs[next_dealloc..] {
            self.emit_zeroing(d, timing, &mut out);
        }
        out
    }

    fn emit_zeroing(
        self,
        d: &crate::workload::DeallocEvent,
        timing: &TimingParams,
        out: &mut Vec<TraceOp>,
    ) {
        match self.row_op(timing) {
            None => {
                // Software zeroing: one store per line of each freed page.
                for page in 0..u64::from(d.pages) {
                    let base = (d.first_page + page) * PAGE_BYTES;
                    for line in 0..LINES_PER_PAGE {
                        out.push(TraceOp::Write(base + line * 64));
                    }
                }
            }
            Some((op, busy_cycles)) => {
                // One row operation per freed 8 KB row (two 4 KB pages).
                let rows = (u64::from(d.pages) * PAGE_BYTES).div_ceil(8192);
                for row in 0..rows {
                    let addr = d.first_page * PAGE_BYTES + row * 8192;
                    out.push(TraceOp::RowOp {
                        addr,
                        op,
                        busy_cycles,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, Benchmark};

    fn timing() -> TimingParams {
        TimingParams::ddr3_1600_11()
    }

    #[test]
    fn software_splices_writes_hardware_splices_rowops() {
        let app = generate(Benchmark::Shell, 4, 1);
        let sw = ZeroingMechanism::Software.instrument(&app, &timing());
        let hw = ZeroingMechanism::Codic.instrument(&app, &timing());
        assert!(sw.len() > app.ops.len());
        let rowops = hw
            .iter()
            .filter(|o| matches!(o, TraceOp::RowOp { .. }))
            .count();
        let expected_rows: u64 = app
            .deallocs
            .iter()
            .map(|d| (u64::from(d.pages) * PAGE_BYTES).div_ceil(8192))
            .sum();
        assert_eq!(rowops as u64, expected_rows);
        assert!(sw.len() > hw.len(), "software zeroing inflates the trace");
    }

    #[test]
    fn codic_rowops_are_cheapest() {
        let t = timing();
        let (_, codic) = ZeroingMechanism::Codic.row_op(&t).unwrap();
        let (_, rc) = ZeroingMechanism::RowClone.row_op(&t).unwrap();
        let (_, lisa) = ZeroingMechanism::LisaClone.row_op(&t).unwrap();
        assert!(codic < rc && rc < lisa);
        assert!(ZeroingMechanism::Software.row_op(&t).is_none());
    }

    #[test]
    fn instrumentation_preserves_application_ops() {
        let app = generate(Benchmark::Mysql, 3, 2);
        for m in ZeroingMechanism::ALL {
            let instrumented = m.instrument(&app, &timing());
            let app_ops = instrumented
                .iter()
                .filter(|o| !matches!(o, TraceOp::RowOp { .. }))
                .filter(|o| {
                    // Zeroing writes are extra Write ops; just check
                    // Read/Bubble counts survive.
                    matches!(o, TraceOp::Read(_) | TraceOp::Bubble(_))
                })
                .count();
            let original = app
                .ops
                .iter()
                .filter(|o| matches!(o, TraceOp::Read(_) | TraceOp::Bubble(_)))
                .count();
            assert_eq!(app_ops, original, "{m:?}");
        }
    }
}
