//! The compared secure-deallocation mechanisms (Appendix A).
//!
//! The hardware mechanisms are expressed as typed [`CodicOp`] plans
//! ([`InDramMechanism`]) — the same command stream the `CodicDevice`
//! serving path executes — and their per-row costs come from the shared
//! [`codic_power::accounting`] helper. The trace splicer turns that plan
//! into the posted row operations the full-system simulation replays.

use codic_core::ops::{CodicOp, InDramMechanism, RowRegion, VariantId};
use codic_dram::request::RowOpKind;
use codic_dram::trace::TraceOp;
use codic_dram::TimingParams;
use codic_power::accounting;

use crate::workload::{AppTrace, LINES_PER_PAGE, PAGE_BYTES};

/// How freed memory is zeroed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZeroingMechanism {
    /// Software: the OS writes zeros through the CPU (Chow et al.'s
    /// secure deallocation) — the study's baseline.
    Software,
    /// LISA-clone copies from a zero row.
    LisaClone,
    /// RowClone copies from a zero row.
    RowClone,
    /// CODIC-det drives every cell to zero with one command per row.
    Codic,
}

impl ZeroingMechanism {
    /// The mechanisms in Figure 8's bar order.
    pub const ALL: [ZeroingMechanism; 4] = [
        ZeroingMechanism::Software,
        ZeroingMechanism::LisaClone,
        ZeroingMechanism::RowClone,
        ZeroingMechanism::Codic,
    ];

    /// The hardware mechanisms only.
    pub const HARDWARE: [ZeroingMechanism; 3] = [
        ZeroingMechanism::LisaClone,
        ZeroingMechanism::RowClone,
        ZeroingMechanism::Codic,
    ];

    /// Display name as in Figure 8.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ZeroingMechanism::Software => "software",
            ZeroingMechanism::LisaClone => "LISA-clone",
            ZeroingMechanism::RowClone => "RowClone",
            ZeroingMechanism::Codic => "CODIC",
        }
    }

    /// The typed per-row zeroing operation, for the hardware mechanisms.
    #[must_use]
    pub fn op_for_row(self, row_addr: u64) -> Option<CodicOp> {
        match self {
            ZeroingMechanism::Software => None,
            ZeroingMechanism::Codic => Some(CodicOp::command(VariantId::DetZero, row_addr)),
            ZeroingMechanism::RowClone => Some(CodicOp::RowCloneZero { row_addr }),
            ZeroingMechanism::LisaClone => Some(CodicOp::LisaCloneZero { row_addr }),
        }
    }

    /// Row-operation parameters for the hardware mechanisms:
    /// (kind, bank-busy cycles), from the shared accounting helper.
    #[must_use]
    pub fn row_op(self, t: &TimingParams) -> Option<(RowOpKind, u32)> {
        let kind = self.op_for_row(0)?.row_op_kind()?;
        Some((kind, accounting::row_op_busy_cycles(kind, t)))
    }

    /// Builds the full core trace: the application ops with the zeroing
    /// work this mechanism requires spliced in at each deallocation point.
    #[must_use]
    pub fn instrument(self, app: &AppTrace, timing: &TimingParams) -> Vec<TraceOp> {
        let mut out = Vec::with_capacity(app.ops.len() + app.deallocs.len() * 64);
        let mut next_dealloc = 0usize;
        for (pos, &op) in app.ops.iter().enumerate() {
            while next_dealloc < app.deallocs.len() && app.deallocs[next_dealloc].trace_pos == pos {
                self.emit_zeroing(&app.deallocs[next_dealloc], timing, &mut out);
                next_dealloc += 1;
            }
            out.push(op);
        }
        for d in &app.deallocs[next_dealloc..] {
            self.emit_zeroing(d, timing, &mut out);
        }
        out
    }

    /// The freed region of one deallocation event, in whole rows (one row
    /// operation per freed 8 KB row — two 4 KB pages).
    fn freed_region(d: &crate::workload::DeallocEvent) -> RowRegion {
        RowRegion::covering_bytes(d.first_page * PAGE_BYTES, u64::from(d.pages) * PAGE_BYTES)
    }

    fn emit_zeroing(
        self,
        d: &crate::workload::DeallocEvent,
        timing: &TimingParams,
        out: &mut Vec<TraceOp>,
    ) {
        let region = Self::freed_region(d);
        let plan = InDramMechanism::plan(&self, region);
        if plan.is_empty() {
            // Software zeroing: one store per line of each freed page.
            for page in 0..u64::from(d.pages) {
                let base = (d.first_page + page) * PAGE_BYTES;
                for line in 0..LINES_PER_PAGE {
                    out.push(TraceOp::Write(base + line * 64));
                }
            }
        } else {
            for op in plan {
                let kind = op.row_op_kind().expect("zeroing plans are row ops");
                out.push(TraceOp::RowOp {
                    addr: op.row_addr(),
                    op: kind,
                    busy_cycles: accounting::row_op_busy_cycles(kind, timing),
                });
            }
        }
    }
}

impl InDramMechanism for ZeroingMechanism {
    fn name(&self) -> &str {
        ZeroingMechanism::name(*self)
    }

    /// One zeroing op per freed row; the software baseline has no in-DRAM
    /// component and plans nothing.
    fn plan(&self, region: RowRegion) -> Vec<CodicOp> {
        region
            .row_addrs()
            .filter_map(|addr| self.op_for_row(addr))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, Benchmark};

    fn timing() -> TimingParams {
        TimingParams::ddr3_1600_11()
    }

    #[test]
    fn software_splices_writes_hardware_splices_rowops() {
        let app = generate(Benchmark::Shell, 4, 1);
        let sw = ZeroingMechanism::Software.instrument(&app, &timing());
        let hw = ZeroingMechanism::Codic.instrument(&app, &timing());
        assert!(sw.len() > app.ops.len());
        let rowops = hw
            .iter()
            .filter(|o| matches!(o, TraceOp::RowOp { .. }))
            .count();
        let expected_rows: u64 = app
            .deallocs
            .iter()
            .map(|d| (u64::from(d.pages) * PAGE_BYTES).div_ceil(8192))
            .sum();
        assert_eq!(rowops as u64, expected_rows);
        assert!(sw.len() > hw.len(), "software zeroing inflates the trace");
    }

    #[test]
    fn codic_rowops_are_cheapest() {
        let t = timing();
        let (_, codic) = ZeroingMechanism::Codic.row_op(&t).unwrap();
        let (_, rc) = ZeroingMechanism::RowClone.row_op(&t).unwrap();
        let (_, lisa) = ZeroingMechanism::LisaClone.row_op(&t).unwrap();
        assert!(codic < rc && rc < lisa);
        assert!(ZeroingMechanism::Software.row_op(&t).is_none());
    }

    #[test]
    fn instrumentation_preserves_application_ops() {
        let app = generate(Benchmark::Mysql, 3, 2);
        for m in ZeroingMechanism::ALL {
            let instrumented = m.instrument(&app, &timing());
            let app_ops = instrumented
                .iter()
                .filter(|o| !matches!(o, TraceOp::RowOp { .. }))
                .filter(|o| {
                    // Zeroing writes are extra Write ops; just check
                    // Read/Bubble counts survive.
                    matches!(o, TraceOp::Read(_) | TraceOp::Bubble(_))
                })
                .count();
            let original = app
                .ops
                .iter()
                .filter(|o| matches!(o, TraceOp::Read(_) | TraceOp::Bubble(_)))
                .count();
            assert_eq!(app_ops, original, "{m:?}");
        }
    }

    #[test]
    fn plans_match_the_spliced_row_ops() {
        let region = RowRegion::new(0, 3);
        let plan = InDramMechanism::plan(&ZeroingMechanism::Codic, region);
        assert_eq!(plan.len(), 3);
        assert!(plan.iter().all(|op| op.is_destructive()));
        assert_eq!(plan[2].row_addr(), 2 * 8192);
        assert!(InDramMechanism::plan(&ZeroingMechanism::Software, region).is_empty());
        assert_eq!(
            InDramMechanism::plan(&ZeroingMechanism::RowClone, region)[0].row_op_kind(),
            Some(RowOpKind::RowClone)
        );
    }

    #[test]
    fn costs_delegate_to_shared_accounting() {
        let t = timing();
        for m in ZeroingMechanism::HARDWARE {
            let (kind, busy) = m.row_op(&t).unwrap();
            assert_eq!(busy, accounting::row_op_busy_cycles(kind, &t));
        }
    }
}
