//! The 4-core workload mixes (Table 9 and the AVG50 bar of Figure 9).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::workload::Benchmark;

/// A named 4-core mix: two allocation-intensive benchmarks (the partners
/// are a streaming and a random-access trace, as in Table 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Mix label ("MIX1"…).
    pub name: &'static str,
    /// The two allocation-intensive members.
    pub intensive: [Benchmark; 2],
}

/// The five representative mixes of Table 9.
#[must_use]
pub fn representative_mixes() -> Vec<Mix> {
    vec![
        Mix {
            name: "MIX1",
            intensive: [Benchmark::Malloc, Benchmark::Bootup],
        },
        Mix {
            name: "MIX2",
            intensive: [Benchmark::Shell, Benchmark::Bootup],
        },
        Mix {
            name: "MIX3",
            intensive: [Benchmark::Bootup, Benchmark::Shell],
        },
        Mix {
            name: "MIX4",
            intensive: [Benchmark::Malloc, Benchmark::Shell],
        },
        Mix {
            name: "MIX5",
            intensive: [Benchmark::Malloc, Benchmark::Malloc],
        },
    ]
}

/// Draws the full 50-mix population used for the AVG50 bar: every mix is
/// two random allocation-intensive benchmarks.
#[must_use]
pub fn fifty_mixes(seed: u64) -> Vec<[Benchmark; 2]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..50)
        .map(|_| {
            [
                Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())],
                Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())],
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_five_representative_mixes() {
        let m = representative_mixes();
        assert_eq!(m.len(), 5);
        assert_eq!(m[0].name, "MIX1");
        // MIX5 doubles up on malloc, as Table 9 does.
        assert_eq!(m[4].intensive, [Benchmark::Malloc, Benchmark::Malloc]);
    }

    #[test]
    fn fifty_mixes_are_deterministic_and_diverse() {
        let a = fifty_mixes(1);
        let b = fifty_mixes(1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let distinct: std::collections::HashSet<_> =
            a.iter().map(|m| (m[0].name(), m[1].name())).collect();
        assert!(distinct.len() > 10);
    }
}
