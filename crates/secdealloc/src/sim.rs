//! Running the secure-deallocation comparison (Figures 8 and 9).

use std::collections::HashMap;

use codic_dram::geometry::DramGeometry;
use codic_dram::system::System;
use codic_dram::timing::TimingParams;
use codic_dram::trace::TraceOp;
use codic_power::EnergyModel;

use crate::mechanism::ZeroingMechanism;
use crate::workload::{generate, generate_partner, AppTrace, Benchmark};

/// Result of running the same workload under every mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    cycles: HashMap<ZeroingMechanism, u64>,
    energy_nj: HashMap<ZeroingMechanism, f64>,
}

impl Comparison {
    /// Speedup of `mechanism` over software zeroing (> 1 is faster).
    #[must_use]
    pub fn speedup(&self, mechanism: ZeroingMechanism) -> f64 {
        self.cycles[&ZeroingMechanism::Software] as f64 / self.cycles[&mechanism] as f64
    }

    /// Energy savings of `mechanism` relative to software zeroing, as a
    /// fraction (0.34 = 34 % less energy).
    #[must_use]
    pub fn energy_savings(&self, mechanism: ZeroingMechanism) -> f64 {
        1.0 - self.energy_nj[&mechanism] / self.energy_nj[&ZeroingMechanism::Software]
    }

    /// Raw cycle count of one mechanism.
    #[must_use]
    pub fn cycles(&self, mechanism: ZeroingMechanism) -> u64 {
        self.cycles[&mechanism]
    }
}

fn run_traces(traces: Vec<Vec<TraceOp>>) -> (u64, f64) {
    let timing = TimingParams::ddr3_1600_11();
    let mut system = System::new(DramGeometry::module_mib(256), timing, traces);
    let stats = system.run(u64::MAX);
    let energy = EnergyModel::paper_default()
        .breakdown(&stats.mem, stats.cycles)
        .total_nj();
    (stats.cycles, energy)
}

fn compare(app_traces: &[AppTrace]) -> Comparison {
    let timing = TimingParams::ddr3_1600_11();
    let mut cycles = HashMap::new();
    let mut energy = HashMap::new();
    for m in ZeroingMechanism::ALL {
        let traces: Vec<Vec<TraceOp>> = app_traces
            .iter()
            .map(|t| m.instrument(t, &timing))
            .collect();
        let (c, e) = run_traces(traces);
        cycles.insert(m, c);
        energy.insert(m, e);
    }
    Comparison {
        cycles,
        energy_nj: energy,
    }
}

/// Single-core comparison for one benchmark (Figure 8): `bursts`
/// allocate–use–free cycles.
#[must_use]
pub fn single_core_comparison(benchmark: Benchmark, bursts: u32, seed: u64) -> Comparison {
    compare(&[generate(benchmark, bursts, seed)])
}

/// 4-core mix comparison (Figure 9): two allocation-intensive benchmarks
/// plus one streaming and one random-access partner.
#[must_use]
pub fn mix_comparison(intensive: [Benchmark; 2], bursts: u32, seed: u64) -> Comparison {
    let partner_len = 3000;
    let traces = vec![
        generate(intensive[0], bursts, seed),
        generate(intensive[1], bursts, seed ^ 1),
        generate_partner(true, partner_len, seed ^ 2),
        generate_partner(false, partner_len, seed ^ 3),
    ];
    compare(&traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_beats_software_on_malloc() {
        let c = single_core_comparison(Benchmark::Malloc, 60, 7);
        for m in ZeroingMechanism::HARDWARE {
            assert!(c.speedup(m) > 1.0, "{m:?}: {}", c.speedup(m));
            assert!(c.energy_savings(m) > 0.0, "{m:?}");
        }
    }

    #[test]
    fn codic_is_the_fastest_mechanism() {
        let c = single_core_comparison(Benchmark::Malloc, 60, 7);
        let codic = c.speedup(ZeroingMechanism::Codic);
        let rc = c.speedup(ZeroingMechanism::RowClone);
        let lisa = c.speedup(ZeroingMechanism::LisaClone);
        assert!(codic >= rc, "codic {codic} vs rowclone {rc}");
        assert!(rc >= lisa, "rowclone {rc} vs lisa {lisa}");
    }

    #[test]
    fn malloc_gains_roughly_20_percent_with_codic() {
        // Figure 8: the malloc stressor shows the largest speedup (≈21 %).
        let c = single_core_comparison(Benchmark::Malloc, 80, 3);
        let s = c.speedup(ZeroingMechanism::Codic);
        assert!(s > 1.10 && s < 1.40, "speedup {s}");
    }

    #[test]
    fn low_intensity_benchmarks_gain_less() {
        let malloc = single_core_comparison(Benchmark::Malloc, 50, 5);
        let mysql = single_core_comparison(Benchmark::Mysql, 50, 5);
        assert!(
            malloc.speedup(ZeroingMechanism::Codic) > mysql.speedup(ZeroingMechanism::Codic),
            "allocation intensity must drive the benefit"
        );
        assert!(mysql.speedup(ZeroingMechanism::Codic) > 1.0);
    }

    #[test]
    fn four_core_mixes_still_benefit() {
        let c = mix_comparison([Benchmark::Malloc, Benchmark::Bootup], 30, 11);
        let s = c.speedup(ZeroingMechanism::Codic);
        assert!(s > 1.0, "mix speedup {s}");
    }
}
