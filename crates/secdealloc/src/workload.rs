//! Benchmark descriptors (Table 8) and synthetic trace generation.

use codic_dram::trace::TraceOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bytes per OS page.
pub const PAGE_BYTES: u64 = 4096;

/// Lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / 64;

/// The six memory-allocation-intensive benchmarks of Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// MySQL loading the sample employee database.
    Mysql,
    /// Memcached, a memory object caching system.
    Memcached,
    /// Compilation phase of GCC.
    Compiler,
    /// Linux kernel boot-up phase.
    Bootup,
    /// Shell script running `find` with `ls`.
    Shell,
    /// stress-ng stressing the malloc primitive.
    Malloc,
}

/// Workload knobs derived from each benchmark's allocation behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Pages deallocated per burst.
    pub pages_per_burst: u32,
    /// Non-memory instructions between page touches (compute intensity).
    pub bubbles_per_page: u32,
    /// Read accesses per page before it is freed (reuse).
    pub reads_per_page: u32,
    /// Fraction of each page's lines the application actually writes.
    pub write_density: f64,
}

impl Benchmark {
    /// All six benchmarks in Figure 8's order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Mysql,
        Benchmark::Memcached,
        Benchmark::Compiler,
        Benchmark::Bootup,
        Benchmark::Shell,
        Benchmark::Malloc,
    ];

    /// Display name as in Figure 8.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mysql => "mysql",
            Benchmark::Memcached => "memcach.",
            Benchmark::Compiler => "compile",
            Benchmark::Bootup => "bootup",
            Benchmark::Shell => "shell",
            Benchmark::Malloc => "malloc",
        }
    }

    /// The benchmark's workload parameters: more allocation-bound
    /// benchmarks free more pages per unit of useful work.
    #[must_use]
    pub fn params(self) -> WorkloadParams {
        match self {
            Benchmark::Mysql => WorkloadParams {
                pages_per_burst: 4,
                bubbles_per_page: 11_000,
                reads_per_page: 28,
                write_density: 0.9,
            },
            Benchmark::Memcached => WorkloadParams {
                pages_per_burst: 4,
                bubbles_per_page: 7_900,
                reads_per_page: 22,
                write_density: 0.9,
            },
            Benchmark::Compiler => WorkloadParams {
                pages_per_burst: 6,
                bubbles_per_page: 6_400,
                reads_per_page: 16,
                write_density: 0.8,
            },
            Benchmark::Bootup => WorkloadParams {
                pages_per_burst: 8,
                bubbles_per_page: 5_500,
                reads_per_page: 8,
                write_density: 0.7,
            },
            Benchmark::Shell => WorkloadParams {
                pages_per_burst: 8,
                bubbles_per_page: 4_400,
                reads_per_page: 6,
                write_density: 0.6,
            },
            Benchmark::Malloc => WorkloadParams {
                pages_per_burst: 16,
                bubbles_per_page: 3_600,
                reads_per_page: 2,
                write_density: 0.5,
            },
        }
    }
}

/// One deallocation burst recorded while generating a trace: the page
/// range freed and the trace position where the free happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeallocEvent {
    /// Index into the generated trace after which the pages are free.
    pub trace_pos: usize,
    /// First freed page number.
    pub first_page: u64,
    /// Number of pages freed.
    pub pages: u32,
}

/// A generated application trace plus its deallocation schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct AppTrace {
    /// The instruction/memory trace without any zeroing work.
    pub ops: Vec<TraceOp>,
    /// Where deallocations occur.
    pub deallocs: Vec<DeallocEvent>,
}

/// Generates `bursts` allocate–use–free cycles of `benchmark`.
#[must_use]
pub fn generate(benchmark: Benchmark, bursts: u32, seed: u64) -> AppTrace {
    let p = benchmark.params();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EC_DEA);
    let mut ops = Vec::new();
    let mut deallocs = Vec::new();
    let mut next_page = 0u64;
    for _ in 0..bursts {
        let first_page = next_page;
        for page in 0..p.pages_per_burst {
            let base = (first_page + u64::from(page)) * PAGE_BYTES;
            // Application writes its data…
            let writes = (LINES_PER_PAGE as f64 * p.write_density) as u64;
            for line in 0..writes {
                ops.push(TraceOp::Write(base + line * 64));
            }
            // …computes…
            ops.push(TraceOp::Bubble(p.bubbles_per_page));
            // …and reads some of it back.
            for _ in 0..p.reads_per_page {
                let line = rng.gen_range(0..LINES_PER_PAGE);
                ops.push(TraceOp::Read(base + line * 64));
            }
        }
        next_page += u64::from(p.pages_per_burst);
        deallocs.push(DeallocEvent {
            trace_pos: ops.len(),
            first_page,
            pages: p.pages_per_burst,
        });
    }
    AppTrace { ops, deallocs }
}

/// Generates a non-allocation-intensive partner trace (TPC-C/H, STREAM,
/// SPEC-class) for the 4-core mixes: streaming reads and compute, no
/// deallocation.
#[must_use]
pub fn generate_partner(streaming: bool, length: u32, seed: u64) -> AppTrace {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9A57);
    let mut ops = Vec::new();
    let mut addr = 1u64 << 28; // keep partners away from the dealloc heap
    for _ in 0..length {
        if streaming {
            ops.push(TraceOp::Read(addr));
            addr += 64;
            ops.push(TraceOp::Bubble(8));
        } else {
            let jump = rng.gen_range(0..1u64 << 22) & !63;
            ops.push(TraceOp::Read((1 << 28) + jump));
            ops.push(TraceOp::Bubble(60));
        }
    }
    AppTrace {
        ops,
        deallocs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_frees_the_most_pages_per_work() {
        let malloc = Benchmark::Malloc.params();
        let mysql = Benchmark::Mysql.params();
        let intensity = |p: &WorkloadParams| {
            f64::from(p.pages_per_burst)
                / (f64::from(p.bubbles_per_page) + f64::from(p.reads_per_page))
        };
        assert!(intensity(&malloc) > 5.0 * intensity(&mysql));
        // Bubbles dominate page cost so zeroing stays a 10-25 % tax.
        assert!(malloc.bubbles_per_page > 1000);
    }

    #[test]
    fn generated_trace_has_deallocs_at_recorded_positions() {
        let t = generate(Benchmark::Shell, 10, 1);
        assert_eq!(t.deallocs.len(), 10);
        for d in &t.deallocs {
            assert!(d.trace_pos <= t.ops.len());
            assert_eq!(d.pages, Benchmark::Shell.params().pages_per_burst);
        }
    }

    #[test]
    fn freed_page_ranges_do_not_overlap() {
        let t = generate(Benchmark::Malloc, 20, 2);
        let mut seen = std::collections::HashSet::new();
        for d in &t.deallocs {
            for p in 0..u64::from(d.pages) {
                assert!(seen.insert(d.first_page + p), "page freed twice");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            generate(Benchmark::Bootup, 5, 9),
            generate(Benchmark::Bootup, 5, 9)
        );
    }

    #[test]
    fn partner_traces_have_no_deallocs() {
        let t = generate_partner(true, 100, 3);
        assert!(t.deallocs.is_empty());
        assert!(!t.ops.is_empty());
    }
}
