//! `replay-server`: the long-running trace-replay service.
//!
//! Binds a Unix socket and serves each connection as an independent
//! replay session over its own sharded device pool (wire format:
//! `docs/PROTOCOL.md`; architecture: `docs/ARCHITECTURE.md`).
//!
//! ```text
//! replay-server [--socket PATH] [--tcp ADDR] [--shards N]
//!               [--module-mib M] [--fleet-slots N]
//!               [--max-outstanding K] [--max-rows-per-sec R]
//!               [--refresh] [--workers] [--connections N]
//!               [--compute-rows C]
//!               [--fault-seed S] [--misfire-per-64k P]
//!               [--stuck-shard I --stuck-at CYCLE]
//!               [--retry-attempts A]
//!               [--read-timeout-ms T] [--session-idle-ms I]
//!               [--journal-max-kib J]
//! ```
//!
//! `--tcp ADDR` (e.g. `--tcp 127.0.0.1:7070`) adds a TCP listener
//! beside the Unix socket; the protocol is identical over both.
//!
//! `--fleet-slots N` serves every session from one shared device fleet
//! carved into N tenant leases of `--shards` shards each, with
//! deficit-round-robin admission across tenants; each session's stream
//! stays bit-identical to a private pool of its slot shape.
//! Incompatible with `--workers`.
//!
//! The deadline flags tune session robustness: `--read-timeout-ms` is
//! how long a session thread parks inside a socket read before
//! re-checking the shutdown flag and the idle deadline,
//! `--session-idle-ms` tears down silent clients (and reaps parked
//! resume state) honestly, and `--journal-max-kib` caps each v4
//! session's resume journal.
//!
//! `--workers` serves every session through pipelined shard workers
//! (one thread per shard behind SPSC rings) instead of the inline pool;
//! the completion stream is bit-identical, the host throughput higher.
//!
//! `--compute-rows C` reserves the top C rows of every session's module
//! as the default bulk-bitwise compute region (a `Hello` may request
//! its own region; 0 leaves compute disabled unless a client asks).
//!
//! `--connections N` serves exactly N sessions then exits (the smoke /
//! benchmark mode); the default serves forever. `--max-rows-per-sec`
//! sets the server-wide replay-rate cap a session's own target can only
//! lower.
//!
//! The fault flags arm the deterministic injection layer of
//! `codic_core::fault` for chaos rehearsal: `--fault-seed` seeds the
//! plan, `--misfire-per-64k` sets the per-attempt row-op misfire rate,
//! `--stuck-shard`/`--stuck-at` freeze one shard's clock at a cycle
//! ceiling (the pool quarantines it at the next batch boundary), and
//! `--retry-attempts` bounds re-issues per op (1 disables retry). With
//! none of these given the server runs the exact fault-free path.

use std::path::PathBuf;
use std::process::ExitCode;

use codic_server::cli::{arg, arg_u64, deadline_args, fault_plan_args, has_flag, retry_args};
use codic_server::server::{ReplayServer, ServerConfig};

fn main() -> ExitCode {
    let socket = arg("--socket")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("codic-replay.sock"));
    let defaults = ServerConfig::default();

    let fault = fault_plan_args();
    let retry = retry_args(defaults.retry);
    let mut config = ServerConfig {
        shards: arg_u64("--shards").unwrap_or(defaults.shards as u64) as usize,
        module_mib: arg_u64("--module-mib").unwrap_or(defaults.module_mib),
        max_outstanding: arg_u64("--max-outstanding").unwrap_or(defaults.max_outstanding as u64)
            as usize,
        target_rows_per_s: arg_u64("--max-rows-per-sec").unwrap_or(0),
        refresh: has_flag("--refresh"),
        fault,
        retry,
        health: defaults.health,
        compute_rows: arg_u64("--compute-rows").unwrap_or(0),
        workers: has_flag("--workers"),
        fleet_slots: arg_u64("--fleet-slots").unwrap_or(0) as usize,
        ..defaults.clone()
    };
    deadline_args(&mut config);
    let connections = arg_u64("--connections");

    if config.fault.is_some() {
        eprintln!("replay-server: fault injection ARMED (deterministic chaos rehearsal)");
    }

    let server = match ReplayServer::bind(&socket, config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("replay-server: cannot bind {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    let server = match arg("--tcp") {
        Some(addr) => match server.with_tcp(&addr) {
            Ok(server) => {
                eprintln!("replay-server: also listening on tcp {addr}");
                server
            }
            Err(e) => {
                eprintln!("replay-server: cannot bind tcp {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => server,
    };
    eprintln!(
        "replay-server: listening on {} ({} shard(s), {} MiB module, max outstanding {}, rate cap {}{})",
        socket.display(),
        config.shards,
        config.module_mib,
        config.max_outstanding,
        if config.target_rows_per_s == 0 {
            "none".to_string()
        } else {
            format!("{} rows/s", config.target_rows_per_s)
        },
        if config.fleet_slots == 0 {
            String::new()
        } else {
            format!(", shared fleet of {} tenant slots", config.fleet_slots)
        },
    );
    let served = match connections {
        Some(n) => server.serve_connections(n as usize),
        None => server.serve_forever(),
    };
    if let Err(e) = served {
        eprintln!("replay-server: accept failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
