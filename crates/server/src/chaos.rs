//! A deterministic, seeded chaos transport: the wire-level twin of the
//! device layer's `FaultPlan`.
//!
//! [`ChaosPlan`] describes what goes wrong on a connection — byte
//! corruption, a hard mid-frame cut, short reads/writes, stalls — and
//! [`wrap`] applies it around the two halves of a real stream. All
//! chaos is driven by splitmix64 rolls keyed on the **absolute byte
//! offset** of each direction's stream, so the damage is a pure
//! function of `(seed, offset)`: independent of timing, buffering, or
//! how the bytes happened to be sliced into read/write calls. That is
//! what lets the end-to-end suite pin *exact* session checksums while
//! the transport is actively lying, cutting, and stalling.
//!
//! A cut is byte-exact: the transfer that crosses `cut_after` combined
//! bytes is truncated at the boundary, the underlying transport is
//! severed ([`Severable`]), and every later call fails with
//! [`io::ErrorKind::ConnectionReset`] — exactly the mid-frame kill a
//! yanked cable or an OOM-killed peer produces.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// splitmix64 — the same generator the fault layer and the fuzz
/// campaigns use.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Direction salts: the two byte streams of one connection roll
/// independently.
const DIR_READ: u64 = 0x5eed_0000_0000_0001;
const DIR_WRITE: u64 = 0x5eed_0000_0000_0002;
/// Salt separating the per-call stall roll from the per-byte
/// corruption roll.
const STALL_SALT: u64 = 0x57a1_1000_0000_0000;

/// A seeded description of everything this transport does to a
/// connection. `ChaosPlan::new(seed)` is a perfectly honest transport;
/// each `with_*` builder arms one failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for every roll this plan makes.
    pub seed: u64,
    /// Per-64 KiB odds that any given transferred byte is overwritten
    /// with a seeded value (0 = off). Rolled per absolute byte offset,
    /// per direction.
    pub corrupt_per_64k: u32,
    /// Hard-cut the connection once this many bytes (both directions
    /// combined) have moved; the crossing transfer is truncated at the
    /// exact boundary (0 = never).
    pub cut_after: u64,
    /// Largest transfer per read/write call (0 = unlimited): forces the
    /// short-I/O paths that vectored writes and incremental readers
    /// must survive.
    pub max_io_chunk: usize,
    /// Per-64 KiB odds that an I/O call stalls ~1 ms first (0 = off).
    /// Stalls only burn host time — they can never change what any
    /// checksum sees.
    pub stall_per_64k: u32,
}

impl ChaosPlan {
    /// An honest transport with `seed`; arm failure modes with the
    /// `with_*` builders.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            corrupt_per_64k: 0,
            cut_after: 0,
            max_io_chunk: 0,
            stall_per_64k: 0,
        }
    }

    /// Arms per-byte corruption at `per_64k` / 65536 odds per byte.
    #[must_use]
    pub fn with_corruption(mut self, per_64k: u32) -> Self {
        self.corrupt_per_64k = per_64k;
        self
    }

    /// Arms the hard cut after `bytes` combined transferred bytes.
    #[must_use]
    pub fn with_cut_after(mut self, bytes: u64) -> Self {
        self.cut_after = bytes;
        self
    }

    /// Caps every read/write call at `chunk` bytes.
    #[must_use]
    pub fn with_short_io(mut self, chunk: usize) -> Self {
        self.max_io_chunk = chunk;
        self
    }

    /// Arms ~1 ms stalls at `per_64k` / 65536 odds per I/O call.
    #[must_use]
    pub fn with_stalls(mut self, per_64k: u32) -> Self {
        self.stall_per_64k = per_64k;
        self
    }

    /// The plan for reconnection `attempt` (0 = the first connection):
    /// same failure modes, independently seeded rolls — so a resumed
    /// connection sees *different* damage, not a replay of the same
    /// bytes dying the same way forever.
    #[must_use]
    pub fn for_attempt(&self, attempt: u32) -> Self {
        ChaosPlan {
            seed: mix64(self.seed ^ (u64::from(attempt).wrapping_add(1) << 32)),
            ..*self
        }
    }

    /// The corruption roll for the byte at `offset` of direction
    /// `dir`: `Some(value)` overwrites the byte.
    fn corrupt_at(&self, dir: u64, offset: u64) -> Option<u8> {
        if self.corrupt_per_64k == 0 {
            return None;
        }
        let roll = mix64(self.seed ^ dir ^ offset);
        (roll % 65_536 < u64::from(self.corrupt_per_64k)).then_some((roll >> 32) as u8)
    }

    /// The stall roll for the I/O call whose first byte is `offset`.
    fn stalls_at(&self, dir: u64, offset: u64) -> bool {
        self.stall_per_64k != 0
            && mix64(self.seed ^ dir ^ offset ^ STALL_SALT) % 65_536 < u64::from(self.stall_per_64k)
    }
}

/// A transport the chaos layer can hard-cut mid-frame, both directions
/// at once — the moral equivalent of yanking the cable.
pub trait Severable {
    /// Cuts the underlying transport; later I/O on either half fails.
    fn sever(&self);
}

impl Severable for UnixStream {
    fn sever(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

impl Severable for TcpStream {
    fn sever(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

impl<T: Severable + ?Sized> Severable for &T {
    fn sever(&self) {
        (**self).sever();
    }
}

impl<T: Severable + ?Sized> Severable for &mut T {
    fn sever(&self) {
        (**self).sever();
    }
}

/// Shared per-connection chaos state: both halves count into the same
/// cut budget, each direction keeps its own byte offset.
#[derive(Debug)]
struct ChaosState {
    plan: ChaosPlan,
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    total_bytes: AtomicU64,
    cut: AtomicBool,
}

impl ChaosState {
    fn reset_error() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos transport cut")
    }

    /// How many of `want` bytes may still move before the cut, erroring
    /// once the budget is spent. `None` = unlimited.
    fn budget(&self, want: usize) -> io::Result<usize> {
        if self.cut.load(Ordering::Relaxed) {
            return Err(Self::reset_error());
        }
        if self.plan.cut_after == 0 {
            return Ok(want);
        }
        let left = self
            .plan
            .cut_after
            .saturating_sub(self.total_bytes.load(Ordering::Relaxed));
        if left == 0 {
            self.cut.store(true, Ordering::Relaxed);
            return Err(Self::reset_error());
        }
        Ok(want.min(usize::try_from(left).unwrap_or(usize::MAX)))
    }

    /// Accounts `n` moved bytes against the cut budget; returns true
    /// when the budget just ran out and the transport must be severed.
    fn account(&self, n: usize) -> bool {
        let total = self.total_bytes.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        if self.plan.cut_after != 0 && total >= self.plan.cut_after {
            self.cut.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// The read half of a chaos-wrapped connection.
#[derive(Debug)]
pub struct ChaosReader<S> {
    inner: S,
    state: Arc<ChaosState>,
}

/// The write half of a chaos-wrapped connection.
#[derive(Debug)]
pub struct ChaosWriter<S> {
    inner: S,
    state: Arc<ChaosState>,
    /// Scratch for the corrupted copy of an outgoing chunk.
    scratch: Vec<u8>,
}

/// Wraps the two halves of one connection in `plan`'s chaos. The halves
/// share one cut budget (combined bytes, either direction) and keep
/// independent corruption offsets.
pub fn wrap<R, W>(read_half: R, write_half: W, plan: ChaosPlan) -> (ChaosReader<R>, ChaosWriter<W>)
where
    R: Read + Severable,
    W: Write + Severable,
{
    let state = Arc::new(ChaosState {
        plan,
        read_bytes: AtomicU64::new(0),
        write_bytes: AtomicU64::new(0),
        total_bytes: AtomicU64::new(0),
        cut: AtomicBool::new(false),
    });
    (
        ChaosReader {
            inner: read_half,
            state: Arc::clone(&state),
        },
        ChaosWriter {
            inner: write_half,
            state,
            scratch: Vec::new(),
        },
    )
}

/// [`wrap`] for a [`UnixStream`]: clones the stream into its two
/// chaos-wrapped halves.
///
/// # Errors
///
/// Propagates the `try_clone` failure.
pub fn wrap_unix(
    stream: UnixStream,
    plan: ChaosPlan,
) -> io::Result<(ChaosReader<UnixStream>, ChaosWriter<UnixStream>)> {
    let read_half = stream.try_clone()?;
    Ok(wrap(read_half, stream, plan))
}

/// [`wrap`] for a [`TcpStream`]: clones the stream into its two
/// chaos-wrapped halves. Cuts shut down both directions, so the chaos
/// plan behaves identically over TCP and Unix sockets.
///
/// # Errors
///
/// Propagates the `try_clone` failure.
pub fn wrap_tcp(
    stream: TcpStream,
    plan: ChaosPlan,
) -> io::Result<(ChaosReader<TcpStream>, ChaosWriter<TcpStream>)> {
    let read_half = stream.try_clone()?;
    Ok(wrap(read_half, stream, plan))
}

impl<S: Read + Severable> Read for ChaosReader<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let plan = self.state.plan;
        let mut want = self.state.budget(buf.len())?;
        if plan.max_io_chunk != 0 {
            want = want.min(plan.max_io_chunk);
        }
        let offset = self.state.read_bytes.load(Ordering::Relaxed);
        if plan.stalls_at(DIR_READ, offset) {
            thread::sleep(Duration::from_millis(1));
        }
        let n = self.inner.read(&mut buf[..want])?;
        self.state.read_bytes.fetch_add(n as u64, Ordering::Relaxed);
        for (i, byte) in buf[..n].iter_mut().enumerate() {
            if let Some(value) = plan.corrupt_at(DIR_READ, offset + i as u64) {
                *byte = value;
            }
        }
        if self.state.account(n) {
            self.inner.sever();
        }
        Ok(n)
    }
}

impl<S: Write + Severable> Write for ChaosWriter<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let plan = self.state.plan;
        let mut want = self.state.budget(buf.len())?;
        if plan.max_io_chunk != 0 {
            want = want.min(plan.max_io_chunk);
        }
        let offset = self.state.write_bytes.load(Ordering::Relaxed);
        if plan.stalls_at(DIR_WRITE, offset) {
            thread::sleep(Duration::from_millis(1));
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(&buf[..want]);
        for (i, byte) in self.scratch.iter_mut().enumerate() {
            if let Some(value) = plan.corrupt_at(DIR_WRITE, offset + i as u64) {
                *byte = value;
            }
        }
        let n = self.inner.write(&self.scratch)?;
        self.state
            .write_bytes
            .fetch_add(n as u64, Ordering::Relaxed);
        if self.state.account(n) {
            let _ = self.inner.flush();
            self.inner.sever();
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.state.cut.load(Ordering::Relaxed) {
            return Err(ChaosState::reset_error());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory severable pipe half for unit tests.
    #[derive(Default)]
    struct Sink(Vec<u8>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl Severable for Sink {
        fn sever(&self) {}
    }

    struct Source<'a>(&'a [u8]);
    impl Read for Source<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.0.len().min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }
    impl Severable for Source<'_> {
        fn sever(&self) {}
    }

    fn write_all_chunks<W: Write>(w: &mut W, data: &[u8]) -> io::Result<()> {
        let mut rest = data;
        while !rest.is_empty() {
            let n = w.write(rest)?;
            assert!(n > 0, "chaos writer made no progress");
            rest = &rest[n..];
        }
        Ok(())
    }

    #[test]
    fn corruption_is_a_pure_function_of_seed_and_offset() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let plan = ChaosPlan::new(0xc0ffee).with_corruption(3000);
        // Same plan, different call slicing: byte-identical output.
        let (mut one, mut two) = (Sink::default(), Sink::default());
        {
            let (_, mut w) = wrap(Source(&[]), &mut one, plan);
            write_all_chunks(&mut w, &data).unwrap();
        }
        {
            let (_, mut w) = wrap(Source(&[]), &mut two, plan.with_short_io(7));
            write_all_chunks(&mut w, &data).unwrap();
        }
        assert_eq!(one.0, two.0, "slicing changed the corruption pattern");
        assert_ne!(one.0, data, "3000/64k over 4 KiB corrupted nothing");
        // A different seed damages different bytes.
        let mut three = Sink::default();
        {
            let (_, mut w) = wrap(
                Source(&[]),
                &mut three,
                ChaosPlan::new(1).with_corruption(3000),
            );
            write_all_chunks(&mut w, &data).unwrap();
        }
        assert_ne!(one.0, three.0);
        // The read direction rolls independently but just as purely.
        let mut got = vec![0u8; data.len()];
        let (mut r, _) = wrap(Source(&data), Sink::default(), plan);
        r.read_exact(&mut got).unwrap();
        assert_ne!(got, data);
        assert_ne!(got, one.0, "read and write directions share rolls");
    }

    #[test]
    fn cuts_are_byte_exact_and_final() {
        let data = vec![0xabu8; 1000];
        let mut sink = Sink::default();
        let plan = ChaosPlan::new(7).with_cut_after(321);
        {
            let (_, mut w) = wrap(Source(&[]), &mut sink, plan);
            let mut written = 0usize;
            let err = loop {
                match w.write(&data[written..]) {
                    Ok(n) => written += n,
                    Err(e) => break e,
                }
            };
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
            assert_eq!(written, 321, "the cut truncated at the exact byte");
            // Severed means severed: reads die too, flush dies.
            assert_eq!(
                w.flush().unwrap_err().kind(),
                io::ErrorKind::ConnectionReset
            );
        }
        assert_eq!(sink.0.len(), 321);
        // The cut budget is shared: reads spend it as well.
        let payload = vec![1u8; 100];
        let (mut r, mut w) = wrap(
            Source(&payload),
            Sink::default(),
            ChaosPlan::new(7).with_cut_after(60),
        );
        let mut buf = vec![0u8; 50];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(
            w.write(&[0u8; 50]).unwrap(),
            10,
            "write got the 10 remaining budget bytes"
        );
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn short_io_chunks_and_stalls_never_change_the_bytes() {
        let data: Vec<u8> = (0..2048u32).map(|i| (i * 13 % 256) as u8).collect();
        let plan = ChaosPlan::new(99).with_short_io(3).with_stalls(800);
        let mut sink = Sink::default();
        {
            let (_, mut w) = wrap(Source(&[]), &mut sink, plan);
            write_all_chunks(&mut w, &data).unwrap();
        }
        assert_eq!(sink.0, data, "short I/O and stalls must be lossless");
        let (mut r, _) = wrap(Source(&data), Sink::default(), plan);
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn tcp_cuts_sever_both_directions_of_the_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut peer, _) = listener.accept().unwrap();
        let (mut r, mut w) = wrap_tcp(client, ChaosPlan::new(5).with_cut_after(8)).unwrap();
        peer.write_all(&[7u8; 4]).unwrap();
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [7u8; 4]);
        assert_eq!(w.write(&[0u8; 16]).unwrap(), 4, "remaining cut budget");
        assert_eq!(
            w.write(&[0u8; 1]).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        // The sever shut the real socket down: the peer sees EOF.
        let mut tail = Vec::new();
        peer.read_to_end(&mut tail).unwrap();
        assert_eq!(tail, [0u8; 4], "peer got exactly the pre-cut bytes");
    }

    #[test]
    fn for_attempt_reseeds_without_changing_the_failure_modes() {
        let plan = ChaosPlan::new(42)
            .with_corruption(10)
            .with_cut_after(1 << 20)
            .with_short_io(16)
            .with_stalls(5);
        let next = plan.for_attempt(1);
        assert_ne!(next.seed, plan.seed);
        assert_eq!(next.corrupt_per_64k, plan.corrupt_per_64k);
        assert_eq!(next.cut_after, plan.cut_after);
        assert_eq!(next.max_io_chunk, plan.max_io_chunk);
        assert_eq!(next.stall_per_64k, plan.stall_per_64k);
        assert_ne!(plan.for_attempt(1), plan.for_attempt(2));
        // Attempt 0 still differs from the base plan's raw seed — the
        // reconnect path always goes through for_attempt.
        assert_ne!(plan.for_attempt(0).seed, plan.seed);
    }
}
