//! Minimal `--flag value` parsing shared by the `replay-server` and
//! `replay-client` binaries (kept tiny on purpose: the offline build
//! has no argument-parsing crate).

/// The value following `flag`, if present.
#[must_use]
pub fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The value following `flag`, parsed as `u64`.
#[must_use]
pub fn arg_u64(flag: &str) -> Option<u64> {
    arg(flag).and_then(|v| v.parse().ok())
}

/// Whether `flag` appears anywhere on the command line.
#[must_use]
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}
