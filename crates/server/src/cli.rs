//! Minimal `--flag value` parsing shared by the `replay-server` and
//! `replay-client` binaries (kept tiny on purpose: the offline build
//! has no argument-parsing crate).

/// The value following `flag`, if present.
#[must_use]
pub fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The value following `flag`, parsed as `u64`.
#[must_use]
pub fn arg_u64(flag: &str) -> Option<u64> {
    arg(flag).and_then(|v| v.parse().ok())
}

/// Whether `flag` appears anywhere on the command line.
#[must_use]
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The seeded fault plan described by `--fault-seed SEED`,
/// `--misfire-per-64k RATE`, and `--stuck-shard I --stuck-at CYCLE`, or
/// `None` (the exact fault-free path) when no fault flag is present.
#[must_use]
pub fn fault_plan_args() -> Option<codic_core::fault::FaultPlan> {
    use codic_core::fault::FaultPlan;
    let seed = arg_u64("--fault-seed");
    let misfire = arg_u64("--misfire-per-64k");
    let stuck_shard = arg_u64("--stuck-shard");
    if seed.is_none() && misfire.is_none() && stuck_shard.is_none() {
        return None;
    }
    let mut plan = FaultPlan::new(seed.unwrap_or(1));
    if let Some(rate) = misfire {
        plan = plan.with_misfires(rate.min(65_536) as u32);
    }
    if let Some(shard) = stuck_shard {
        if let Some(at) = arg_u64("--stuck-at") {
            plan = plan.with_stuck_shard(shard.min(u64::from(u16::MAX)) as u16, at);
        } else {
            eprintln!("--stuck-shard needs --stuck-at CYCLE; ignoring the stuck clock");
        }
    }
    Some(plan)
}

/// Applies the session-deadline and resume-journal flags to `config`:
/// `--read-timeout-ms` (how long a session thread parks in a read
/// before re-checking shutdown and the idle deadline),
/// `--session-idle-ms` (the silent-client teardown and parked-session
/// reap deadline), and `--journal-max-kib` (the per-session v4 resume
/// journal cap). Flags not present leave `config` untouched; zero
/// values clamp to the smallest legal setting.
pub fn deadline_args(config: &mut crate::server::ServerConfig) {
    if let Some(ms) = arg_u64("--read-timeout-ms") {
        config.read_timeout_ms = ms.max(1);
    }
    if let Some(ms) = arg_u64("--session-idle-ms") {
        config.session_idle_ms = ms.max(1);
    }
    if let Some(kib) = arg_u64("--journal-max-kib") {
        config.journal_max_bytes = usize::try_from(kib.saturating_mul(1024))
            .unwrap_or(usize::MAX)
            .max(1);
    }
}

/// The retry policy from `--retry-attempts A` (1 disables retry), or
/// `default` when the flag is absent.
#[must_use]
pub fn retry_args(default: codic_core::fault::RetryPolicy) -> codic_core::fault::RetryPolicy {
    match arg_u64("--retry-attempts") {
        Some(n) => codic_core::fault::RetryPolicy::attempts(n.clamp(1, u64::from(u8::MAX)) as u8),
        None => default,
    }
}
