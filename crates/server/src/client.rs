//! The replay client: plays a typed operation stream against a replay
//! server and verifies the completion stream.
//!
//! [`replay`] drives one full session — `Hello`/`HelloAck`, the trace in
//! `Batch` frames, `Bye`, `Summary` — collecting every typed completion
//! and recomputing the session checksum from the received frames, so a
//! server-side accounting divergence is caught with one `u64` compare.
//! The client absorbs every transport transparently: CRC-trailed frames
//! (protocol ≥ 4, the default `Hello`), batched `Events` frames
//! (protocol ≥ 3), and the per-op `Completion`/`Failed` frames a v2
//! session streams.
//!
//! [`replay_resumable`] adds crash/cut tolerance on top: when the
//! connection dies — or a CRC trailer exposes wire corruption —
//! mid-session, the client reconnects with capped backoff and sends
//! `Resume` with its session token and the count of events it has
//! already absorbed; the server re-emits exactly the missed event
//! payloads from its journal. Every event is absorbed exactly once, so
//! the recomputed checksum of a resumed session is bit-identical to an
//! uninterrupted run.
//!
//! [`verify_against_reference`] then replays the identical batching
//! discipline in process (through [`ReplayEngine`], the same core the
//! server runs) and demands the socket stream be **bit-identical**:
//! same finish cycle and same energy bits per sequence number, same
//! per-shard completion order.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

use codic_core::ops::CodicOp;

use crate::proto::{
    self, read_frame, read_frame_crc, write_frame_in, ErrorCode, Fnv64, Frame, ProtoError,
    ResumeRequest, SessionEvent, SessionParams, Summary, WireCompletion, WireFailure,
    PROTOCOL_VERSION,
};
use crate::server::ReplayEngine;

/// A failed replay session.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// A frame could not be decoded.
    Proto(ProtoError),
    /// The server answered with an error frame.
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        detail: String,
    },
    /// The server broke the session protocol (e.g. no `HelloAck`).
    Protocol(String),
    /// The completion stream failed verification.
    Verification(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol decode error: {e}"),
            ClientError::Server { code, detail } => {
                write!(f, "server error {code:?}: {detail}")
            }
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ClientError::Verification(detail) => write!(f, "verification failed: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// Everything one replayed session produced.
#[derive(Debug)]
pub struct ClientReport {
    /// Effective session parameters from the `HelloAck`.
    pub params: SessionParams,
    /// Every completion, in the order the server streamed them.
    pub completions: Vec<WireCompletion>,
    /// Every typed failure, in the order the server streamed them
    /// (empty unless the server runs with fault injection).
    pub failures: Vec<WireFailure>,
    /// The server's session summary.
    pub summary: Summary,
    /// Checksum recomputed client-side from the received frames (always
    /// equal to `summary.checksum` — [`replay`] fails otherwise).
    pub checksum: u64,
    /// Wall-clock duration of the session, in seconds.
    pub host_seconds: f64,
    /// Connections this session used: 1 for an uninterrupted run, more
    /// when [`replay_resumable`] survived cuts.
    pub connections: u32,
}

impl ClientReport {
    /// Replayed rows per second of host wall-clock time.
    #[must_use]
    pub fn rows_per_s(&self) -> f64 {
        self.summary.ops as f64 / self.host_seconds.max(1e-12)
    }
}

/// Connects to `socket`, retrying with capped exponential backoff: up
/// to `retries` re-attempts after the first failure, sleeping
/// `base × 2^attempt` (capped at two seconds) between attempts. With
/// `retries = 0` this is a plain connect. Useful when the client races
/// a server that is still binding its socket.
///
/// # Errors
///
/// Returns the last connect failure once every attempt is exhausted.
pub fn connect_with_retry(socket: &Path, retries: u32, base: Duration) -> io::Result<UnixStream> {
    let mut attempt = 0u32;
    loop {
        match UnixStream::connect(socket) {
            Ok(stream) => return Ok(stream),
            Err(e) if attempt >= retries => return Err(e),
            Err(_) => {
                thread::sleep(backoff_for(attempt, base));
                attempt += 1;
            }
        }
    }
}

/// [`connect_with_retry`] for a TCP address: the same capped
/// exponential backoff, the same protocol on the other end. Nagle is
/// disabled — frames are flushed at ack boundaries already.
///
/// # Errors
///
/// Returns the last connect failure once every attempt is exhausted.
pub fn connect_tcp_with_retry<A: ToSocketAddrs>(
    addr: A,
    retries: u32,
    base: Duration,
) -> io::Result<TcpStream> {
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect(&addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) if attempt >= retries => return Err(e),
            Err(_) => {
                thread::sleep(backoff_for(attempt, base));
                attempt += 1;
            }
        }
    }
}

/// `base × 2^attempt`, capped at two seconds.
fn backoff_for(attempt: u32, base: Duration) -> Duration {
    const BACKOFF_CAP: Duration = Duration::from_secs(2);
    base.checked_mul(1u32 << attempt.min(20))
        .unwrap_or(BACKOFF_CAP)
        .min(BACKOFF_CAP)
}

/// One running checksum over Completion AND Failed payloads, in the
/// exact order the server emitted them — the same rule the server's
/// tally applies. `events` counts absorbed units: exactly the index the
/// resume protocol reports back as `events_received`.
#[derive(Default)]
struct Absorbed {
    checksum: Fnv64,
    payload: Vec<u8>,
    completions: Vec<WireCompletion>,
    failures: Vec<WireFailure>,
    events: u64,
}

impl Absorbed {
    fn completion(&mut self, c: &WireCompletion) {
        self.payload.clear();
        proto::completion_payload(c, &mut self.payload);
        self.checksum.update(&self.payload);
        self.completions.push(*c);
        self.events += 1;
    }

    fn failure(&mut self, x: &WireFailure) {
        self.payload.clear();
        proto::failure_payload(x, &mut self.payload);
        self.checksum.update(&self.payload);
        self.failures.push(*x);
        self.events += 1;
    }

    /// Absorbs a batched `Events` run unit by unit, in order — the
    /// checksum feeds on the same payload bytes either way, so a
    /// batched stream hashes identically to its unbatched twin.
    fn events(&mut self, events: &[SessionEvent]) {
        for event in events {
            match event {
                SessionEvent::Completion(c) => self.completion(c),
                SessionEvent::Failure(x) => self.failure(x),
            }
        }
    }

    /// Checks the stream against the server's `Summary` and builds the
    /// final report.
    fn into_report(
        self,
        params: SessionParams,
        summary: Summary,
        host_seconds: f64,
        connections: u32,
    ) -> Result<ClientReport, ClientError> {
        let checksum = self.checksum.value();
        if checksum != summary.checksum {
            return Err(ClientError::Verification(format!(
                "stream checksum {checksum:#018x} != summary checksum {:#018x}",
                summary.checksum
            )));
        }
        if summary.ops != self.completions.len() as u64 {
            return Err(ClientError::Verification(format!(
                "summary counts {} ops, stream carried {}",
                summary.ops,
                self.completions.len()
            )));
        }
        if summary.failed != self.failures.len() as u64 {
            return Err(ClientError::Verification(format!(
                "summary counts {} failures, stream carried {}",
                summary.failed,
                self.failures.len()
            )));
        }
        Ok(ClientReport {
            params,
            completions: self.completions,
            failures: self.failures,
            summary,
            checksum,
            host_seconds,
            connections,
        })
    }
}

/// Reads the next frame in the session's framing: CRC-trailed from v4
/// on, bare below.
fn read_next<R: Read>(reader: &mut R, crc: bool) -> Result<Frame, ProtoError> {
    if crc {
        read_frame_crc(reader)
    } else {
        read_frame(reader)
    }
}

/// Plays `ops` against the server at `socket` in batches of `batch`
/// operations, then closes the session and returns the report.
///
/// # Errors
///
/// Returns the socket/protocol failure, the server's error frame, or a
/// checksum mismatch between the received stream and the summary.
pub fn replay(
    socket: &Path,
    hello: &SessionParams,
    ops: &[CodicOp],
    batch: usize,
) -> Result<ClientReport, ClientError> {
    replay_with_retry(socket, hello, ops, batch, 0, Duration::ZERO)
}

/// [`replay`] with [`connect_with_retry`] semantics on the initial
/// connect (the session itself is never retried — a mid-session failure
/// is surfaced, not replayed; [`replay_resumable`] is the
/// cut-tolerant variant).
///
/// # Errors
///
/// As [`replay`], plus the final connect failure when every attempt is
/// exhausted.
pub fn replay_with_retry(
    socket: &Path,
    hello: &SessionParams,
    ops: &[CodicOp],
    batch: usize,
    retries: u32,
    retry_base: Duration,
) -> Result<ClientReport, ClientError> {
    let stream = connect_with_retry(socket, retries, retry_base)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    replay_stream(&mut reader, &mut writer, hello, ops, batch)
}

/// [`replay`] over a TCP connection to `addr` — the same session, frame
/// for frame, over the other transport.
///
/// # Errors
///
/// As [`replay`], plus the connect failure.
pub fn replay_tcp<A: ToSocketAddrs>(
    addr: A,
    hello: &SessionParams,
    ops: &[CodicOp],
    batch: usize,
) -> Result<ClientReport, ClientError> {
    let stream = connect_tcp_with_retry(addr, 0, Duration::ZERO)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    replay_stream(&mut reader, &mut writer, hello, ops, batch)
}

/// The transport-generic session core of [`replay`]: drives one full
/// session over an already-connected `(reader, writer)` pair sharing
/// one stream — Unix socket, TCP, chaos-wrapped, or in-memory.
///
/// # Errors
///
/// As [`replay`].
pub fn replay_stream<R: Read, W: Write>(
    mut reader: &mut R,
    mut writer: &mut W,
    hello: &SessionParams,
    ops: &[CodicOp],
    batch: usize,
) -> Result<ClientReport, ClientError> {
    let started = Instant::now();

    // From v4 on every frame of the session — the Hello included —
    // carries the CRC32C trailer, in both directions.
    let crc = hello.version >= 4;
    write_frame_in(&mut writer, &Frame::Hello(*hello), crc)?;
    writer.flush()?;
    let params = match read_next(&mut reader, crc)? {
        Frame::HelloAck { params, .. } => params,
        Frame::Error { code, detail } => return Err(ClientError::Server { code, detail }),
        other => {
            return Err(ClientError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            )))
        }
    };

    let mut stream = Absorbed {
        completions: Vec::with_capacity(ops.len()),
        ..Absorbed::default()
    };

    // A batch above MAX_BATCH_OPS would produce a frame the server is
    // required to reject; clamp rather than die mid-replay.
    let batch = batch.clamp(1, proto::MAX_BATCH_OPS);
    for chunk in ops.chunks(batch) {
        write_frame_in(&mut writer, &Frame::Batch(chunk.to_vec()), crc)?;
        writer.flush()?;
        // Read this batch's completion burst up to its Batched ack.
        loop {
            match read_next(&mut reader, crc)? {
                Frame::Completion(c) => stream.completion(&c),
                Frame::Failed(x) => stream.failure(&x),
                Frame::Events(events) => stream.events(&events),
                Frame::Batched(_) => break,
                Frame::Error { code, detail } => return Err(ClientError::Server { code, detail }),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Completion/Events/Batched, got {other:?}"
                    )))
                }
            }
        }
    }

    write_frame_in(&mut writer, &Frame::Bye, crc)?;
    writer.flush()?;
    let summary = loop {
        match read_next(&mut reader, crc)? {
            Frame::Completion(c) => stream.completion(&c),
            Frame::Failed(x) => stream.failure(&x),
            Frame::Events(events) => stream.events(&events),
            Frame::Summary(summary) => break summary,
            Frame::Error { code, detail } => return Err(ClientError::Server { code, detail }),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Completion/Events/Summary, got {other:?}"
                )))
            }
        }
    };
    let host_seconds = started.elapsed().as_secs_f64();
    stream.into_report(params, summary, host_seconds, 1)
}

/// How [`replay_resumable`] survives cuts.
#[derive(Debug, Clone, Copy)]
pub struct ResumePolicy {
    /// Reconnect-and-resume attempts allowed across the whole session
    /// (0 = a single connection, no recovery).
    pub max_resumes: u32,
    /// Base of the capped exponential backoff between attempts.
    pub backoff_base: Duration,
}

impl Default for ResumePolicy {
    fn default() -> Self {
        ResumePolicy {
            max_resumes: 8,
            backoff_base: Duration::from_millis(10),
        }
    }
}

/// True when the failure is the *connection's* fault — a socket error
/// or any wire-decode failure (a CRC mismatch, but also the desync
/// garbage a corrupted length prefix turns the rest of the stream
/// into) — and a reconnect may recover it. Server-*sent* errors,
/// protocol-order violations, and verification failures are the
/// session's fault and never retried.
fn recoverable(e: &ClientError) -> bool {
    matches!(e, ClientError::Io(_) | ClientError::Proto(_))
}

/// The client half of the v4 resume protocol: everything that must
/// survive a cut lives here, not on the connection.
struct ResumableRun<'a> {
    ops: &'a [CodicOp],
    batch: usize,
    absorbed: Absorbed,
    /// The server-minted session token from the `HelloAck` (`None`
    /// until the handshake completed once).
    token: Option<u64>,
    params: Option<SessionParams>,
    /// Operations the server has accepted (from `Batched` acks and
    /// `ResumeAck::next_seq`); resubmission restarts here.
    next_op: usize,
    summary: Option<Summary>,
}

impl ResumableRun<'_> {
    /// Drives one connection as far as it will go: handshake (fresh
    /// `Hello` or `Resume`), remaining batches, `Bye`, `Summary`.
    fn attempt<R: Read, W: Write>(
        &mut self,
        reader: &mut R,
        writer: &mut W,
        hello: &SessionParams,
    ) -> Result<(), ClientError> {
        match self.token {
            None => {
                write_frame_in(writer, &Frame::Hello(*hello), true)?;
                writer.flush()?;
                match read_frame_crc(reader)? {
                    Frame::HelloAck { params, token } => {
                        self.params = Some(params);
                        self.token = Some(token);
                    }
                    Frame::Error { code, detail } => {
                        return Err(ClientError::Server { code, detail })
                    }
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "expected HelloAck, got {other:?}"
                        )))
                    }
                }
            }
            Some(token) => {
                write_frame_in(
                    writer,
                    &Frame::Resume(ResumeRequest {
                        version: PROTOCOL_VERSION,
                        token,
                        events_received: self.absorbed.events,
                    }),
                    true,
                )?;
                writer.flush()?;
                match read_frame_crc(reader)? {
                    Frame::ResumeAck(ack) => {
                        self.next_op = usize::try_from(ack.next_seq).map_err(|_| {
                            ClientError::Protocol(format!(
                                "ResumeAck next_seq {} overflows this host",
                                ack.next_seq
                            ))
                        })?;
                        if ack.finished != 0 {
                            // The session already processed our Bye and
                            // only the tail of the stream was lost:
                            // absorb the replay and the Summary.
                            self.read_until_summary(reader)?;
                            return Ok(());
                        }
                    }
                    Frame::Error { code, detail } => {
                        return Err(ClientError::Server { code, detail })
                    }
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "expected ResumeAck, got {other:?}"
                        )))
                    }
                }
            }
        }

        // The journal replay (if any) and fresh completions arrive
        // interleaved with our remaining batches' acks: the absorb loop
        // below makes no distinction — every event is new to us, by the
        // exactly-once contract of `events_received`.
        while self.next_op < self.ops.len() {
            let end = (self.next_op + self.batch).min(self.ops.len());
            write_frame_in(
                writer,
                &Frame::Batch(self.ops[self.next_op..end].to_vec()),
                true,
            )?;
            writer.flush()?;
            loop {
                match read_frame_crc(reader)? {
                    Frame::Completion(c) => self.absorbed.completion(&c),
                    Frame::Failed(x) => self.absorbed.failure(&x),
                    Frame::Events(events) => self.absorbed.events(&events),
                    Frame::Batched(_) => break,
                    Frame::Error { code, detail } => {
                        return Err(ClientError::Server { code, detail })
                    }
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "expected Completion/Events/Batched, got {other:?}"
                        )))
                    }
                }
            }
            self.next_op = end;
        }

        write_frame_in(writer, &Frame::Bye, true)?;
        writer.flush()?;
        self.read_until_summary(reader)
    }

    fn read_until_summary<R: Read>(&mut self, reader: &mut R) -> Result<(), ClientError> {
        loop {
            match read_frame_crc(reader)? {
                Frame::Completion(c) => self.absorbed.completion(&c),
                Frame::Failed(x) => self.absorbed.failure(&x),
                Frame::Events(events) => self.absorbed.events(&events),
                Frame::Summary(summary) => {
                    self.summary = Some(summary);
                    return Ok(());
                }
                Frame::Error { code, detail } => return Err(ClientError::Server { code, detail }),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Completion/Events/Summary, got {other:?}"
                    )))
                }
            }
        }
    }
}

/// [`replay`] with automatic reconnect-and-resume: a connection cut (or
/// CRC-detected corruption) mid-session reconnects to `socket` with
/// capped backoff and continues the *same* session from the last
/// absorbed event, exactly once. The final report's checksum is
/// bit-identical to an uninterrupted run — the chaos-transport suite
/// pins this.
///
/// # Errors
///
/// As [`replay`], once `policy.max_resumes` recovery attempts are
/// exhausted (or immediately on a non-recoverable failure).
pub fn replay_resumable(
    socket: &Path,
    hello: &SessionParams,
    ops: &[CodicOp],
    batch: usize,
    policy: ResumePolicy,
) -> Result<ClientReport, ClientError> {
    replay_resumable_with(hello, ops, batch, policy, |_attempt| {
        let stream = connect_with_retry(socket, 2, Duration::from_millis(5))?;
        Ok((BufReader::new(stream.try_clone()?), BufWriter::new(stream)))
    })
}

/// [`replay_resumable`] over any transport: `connect` opens connection
/// `attempt` (0 = the first) as a `(reader, writer)` pair sharing one
/// stream — the chaos tests hand in fault-injecting wrappers here.
///
/// # Errors
///
/// As [`replay_resumable`].
pub fn replay_resumable_with<R, W, F>(
    hello: &SessionParams,
    ops: &[CodicOp],
    batch: usize,
    policy: ResumePolicy,
    mut connect: F,
) -> Result<ClientReport, ClientError>
where
    R: Read,
    W: Write,
    F: FnMut(u32) -> io::Result<(R, W)>,
{
    if hello.version < 4 {
        return Err(ClientError::Protocol(format!(
            "resumable replay requires protocol >= 4, hello requested v{}",
            hello.version
        )));
    }
    let started = Instant::now();
    let mut run = ResumableRun {
        ops,
        batch: batch.clamp(1, proto::MAX_BATCH_OPS),
        absorbed: Absorbed {
            completions: Vec::with_capacity(ops.len()),
            ..Absorbed::default()
        },
        token: None,
        params: None,
        next_op: 0,
        summary: None,
    };
    let mut attempt = 0u32;
    loop {
        let outcome = match connect(attempt) {
            Ok((mut reader, mut writer)) => run.attempt(&mut reader, &mut writer, hello),
            Err(e) => Err(ClientError::Io(e)),
        };
        match outcome {
            Ok(()) => break,
            Err(e) if recoverable(&e) && attempt < policy.max_resumes => {
                thread::sleep(backoff_for(attempt, policy.backoff_base));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
    let params = run
        .params
        .ok_or_else(|| ClientError::Protocol("session ended without a HelloAck".to_string()))?;
    let summary = run
        .summary
        .ok_or_else(|| ClientError::Protocol("session ended without a Summary".to_string()))?;
    let host_seconds = started.elapsed().as_secs_f64();
    run.absorbed
        .into_report(params, summary, host_seconds, attempt + 1)
}

/// Replays the same `(ops, batch)` discipline in process through
/// [`ReplayEngine`] and demands the served stream be bit-identical:
/// per sequence number the same shard, op, finish cycle, and energy
/// bits; per shard the same completion order.
///
/// # Errors
///
/// Returns [`ClientError::Verification`] naming the first divergence.
pub fn verify_against_reference(
    report: &ClientReport,
    ops: &[CodicOp],
    batch: usize,
) -> Result<(), ClientError> {
    let fail = |detail: String| Err(ClientError::Verification(detail));
    if !report.failures.is_empty() {
        return fail(format!(
            "session carried {} typed failures: a fault-armed server cannot \
             verify against the fault-free reference",
            report.failures.len()
        ));
    }
    if report.completions.len() != ops.len() {
        return fail(format!(
            "{} ops submitted, {} completions received",
            ops.len(),
            report.completions.len()
        ));
    }
    let mut engine = ReplayEngine::new(&report.params);
    let mut reference = Vec::with_capacity(ops.len());
    // The same clamp `replay` applies, so both sides chunk identically.
    for chunk in ops.chunks(batch.clamp(1, proto::MAX_BATCH_OPS)) {
        reference.extend(
            engine
                .submit_batch(chunk)
                .map_err(|e| ClientError::Verification(format!("reference rejected: {e}")))?,
        );
    }
    reference.extend(engine.flush());

    // The reference in its emission order must equal the socket stream
    // in its emission order — order preservation and bit-identity in one
    // comparison.
    for (i, (got, want)) in report.completions.iter().zip(&reference).enumerate() {
        let want = want.to_wire();
        if got.seq != want.seq {
            return fail(format!(
                "stream position {i}: seq {} served, {} expected (order diverged)",
                got.seq, want.seq
            ));
        }
        if got.shard != want.shard || got.op != want.op {
            return fail(format!(
                "seq {}: routed to shard {} as {:?}, expected shard {} {:?}",
                got.seq, got.shard, got.op, want.shard, want.op
            ));
        }
        if got.finish_cycle != want.finish_cycle {
            return fail(format!(
                "seq {}: finish cycle {} served, {} expected",
                got.seq, got.finish_cycle, want.finish_cycle
            ));
        }
        if got.energy_nj.to_bits() != want.energy_nj.to_bits()
            || got.busy_cycles != want.busy_cycles
            || got.activations != want.activations
        {
            return fail(format!("seq {}: accounted cost diverged", got.seq));
        }
        if got.fingerprint != want.fingerprint {
            return fail(format!(
                "seq {}: row fingerprint {:#018x} served, {:#018x} expected \
                 (computed values diverged)",
                got.seq, got.fingerprint, want.fingerprint
            ));
        }
    }
    Ok(())
}
