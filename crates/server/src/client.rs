//! The replay client: plays a typed operation stream against a replay
//! server and verifies the completion stream.
//!
//! [`replay`] drives one full session — `Hello`/`HelloAck`, the trace in
//! `Batch` frames, `Bye`, `Summary` — collecting every typed completion
//! and recomputing the session checksum from the received frames, so a
//! server-side accounting divergence is caught with one `u64` compare.
//! The client absorbs both transports transparently: batched `Events`
//! frames (protocol ≥ 3, the default `Hello`) and the per-op
//! `Completion`/`Failed` frames a v2 session streams.
//!
//! [`verify_against_reference`] then replays the identical batching
//! discipline in process (through [`ReplayEngine`], the same core the
//! server runs) and demands the socket stream be **bit-identical**:
//! same finish cycle and same energy bits per sequence number, same
//! per-shard completion order.

use std::io::{self, BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

use codic_core::ops::CodicOp;

use crate::proto::{
    self, read_frame, write_frame, ErrorCode, Fnv64, Frame, ProtoError, SessionEvent,
    SessionParams, Summary, WireCompletion, WireFailure,
};
use crate::server::ReplayEngine;

/// A failed replay session.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// A frame could not be decoded.
    Proto(ProtoError),
    /// The server answered with an error frame.
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        detail: String,
    },
    /// The server broke the session protocol (e.g. no `HelloAck`).
    Protocol(String),
    /// The completion stream failed verification.
    Verification(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol decode error: {e}"),
            ClientError::Server { code, detail } => {
                write!(f, "server error {code:?}: {detail}")
            }
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ClientError::Verification(detail) => write!(f, "verification failed: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// Everything one replayed session produced.
#[derive(Debug)]
pub struct ClientReport {
    /// Effective session parameters from the `HelloAck`.
    pub params: SessionParams,
    /// Every completion, in the order the server streamed them.
    pub completions: Vec<WireCompletion>,
    /// Every typed failure, in the order the server streamed them
    /// (empty unless the server runs with fault injection).
    pub failures: Vec<WireFailure>,
    /// The server's session summary.
    pub summary: Summary,
    /// Checksum recomputed client-side from the received frames (always
    /// equal to `summary.checksum` — [`replay`] fails otherwise).
    pub checksum: u64,
    /// Wall-clock duration of the session, in seconds.
    pub host_seconds: f64,
}

impl ClientReport {
    /// Replayed rows per second of host wall-clock time.
    #[must_use]
    pub fn rows_per_s(&self) -> f64 {
        self.summary.ops as f64 / self.host_seconds.max(1e-12)
    }
}

/// Connects to `socket`, retrying with capped exponential backoff: up
/// to `retries` re-attempts after the first failure, sleeping
/// `base × 2^attempt` (capped at two seconds) between attempts. With
/// `retries = 0` this is a plain connect. Useful when the client races
/// a server that is still binding its socket.
///
/// # Errors
///
/// Returns the last connect failure once every attempt is exhausted.
pub fn connect_with_retry(socket: &Path, retries: u32, base: Duration) -> io::Result<UnixStream> {
    const BACKOFF_CAP: Duration = Duration::from_secs(2);
    let mut attempt = 0u32;
    loop {
        match UnixStream::connect(socket) {
            Ok(stream) => return Ok(stream),
            Err(e) if attempt >= retries => return Err(e),
            Err(_) => {
                let backoff = base
                    .checked_mul(1u32 << attempt.min(20))
                    .unwrap_or(BACKOFF_CAP)
                    .min(BACKOFF_CAP);
                thread::sleep(backoff);
                attempt += 1;
            }
        }
    }
}

/// Plays `ops` against the server at `socket` in batches of `batch`
/// operations, then closes the session and returns the report.
///
/// # Errors
///
/// Returns the socket/protocol failure, the server's error frame, or a
/// checksum mismatch between the received stream and the summary.
pub fn replay(
    socket: &Path,
    hello: &SessionParams,
    ops: &[CodicOp],
    batch: usize,
) -> Result<ClientReport, ClientError> {
    replay_with_retry(socket, hello, ops, batch, 0, Duration::ZERO)
}

/// [`replay`] with [`connect_with_retry`] semantics on the initial
/// connect (the session itself is never retried — a mid-session failure
/// is surfaced, not replayed).
///
/// # Errors
///
/// As [`replay`], plus the final connect failure when every attempt is
/// exhausted.
pub fn replay_with_retry(
    socket: &Path,
    hello: &SessionParams,
    ops: &[CodicOp],
    batch: usize,
    retries: u32,
    retry_base: Duration,
) -> Result<ClientReport, ClientError> {
    let stream = connect_with_retry(socket, retries, retry_base)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let started = Instant::now();

    write_frame(&mut writer, &Frame::Hello(*hello))?;
    writer.flush()?;
    let params = match read_frame(&mut reader)? {
        Frame::HelloAck(params) => params,
        Frame::Error { code, detail } => return Err(ClientError::Server { code, detail }),
        other => {
            return Err(ClientError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            )))
        }
    };

    // One running checksum over Completion AND Failed payloads, in the
    // exact order the server emitted them — the same rule the server's
    // tally applies.
    struct Absorbed {
        checksum: Fnv64,
        payload: Vec<u8>,
        completions: Vec<WireCompletion>,
        failures: Vec<WireFailure>,
    }
    impl Absorbed {
        fn completion(&mut self, c: &WireCompletion) {
            self.payload.clear();
            proto::completion_payload(c, &mut self.payload);
            self.checksum.update(&self.payload);
            self.completions.push(*c);
        }
        fn failure(&mut self, x: &WireFailure) {
            self.payload.clear();
            proto::failure_payload(x, &mut self.payload);
            self.checksum.update(&self.payload);
            self.failures.push(*x);
        }
        /// Absorbs a batched `Events` run unit by unit, in order — the
        /// checksum feeds on the same payload bytes either way, so a
        /// batched stream hashes identically to its unbatched twin.
        fn events(&mut self, events: &[SessionEvent]) {
            for event in events {
                match event {
                    SessionEvent::Completion(c) => self.completion(c),
                    SessionEvent::Failure(x) => self.failure(x),
                }
            }
        }
    }
    let mut stream = Absorbed {
        checksum: Fnv64::new(),
        payload: Vec::new(),
        completions: Vec::with_capacity(ops.len()),
        failures: Vec::new(),
    };

    // A batch above MAX_BATCH_OPS would produce a frame the server is
    // required to reject; clamp rather than die mid-replay.
    let batch = batch.clamp(1, proto::MAX_BATCH_OPS);
    for chunk in ops.chunks(batch) {
        write_frame(&mut writer, &Frame::Batch(chunk.to_vec()))?;
        writer.flush()?;
        // Read this batch's completion burst up to its Batched ack.
        loop {
            match read_frame(&mut reader)? {
                Frame::Completion(c) => stream.completion(&c),
                Frame::Failed(x) => stream.failure(&x),
                Frame::Events(events) => stream.events(&events),
                Frame::Batched(_) => break,
                Frame::Error { code, detail } => return Err(ClientError::Server { code, detail }),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Completion/Events/Batched, got {other:?}"
                    )))
                }
            }
        }
    }

    write_frame(&mut writer, &Frame::Bye)?;
    writer.flush()?;
    let summary = loop {
        match read_frame(&mut reader)? {
            Frame::Completion(c) => stream.completion(&c),
            Frame::Failed(x) => stream.failure(&x),
            Frame::Events(events) => stream.events(&events),
            Frame::Summary(summary) => break summary,
            Frame::Error { code, detail } => return Err(ClientError::Server { code, detail }),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Completion/Events/Summary, got {other:?}"
                )))
            }
        }
    };
    let host_seconds = started.elapsed().as_secs_f64();

    let checksum = stream.checksum.value();
    if checksum != summary.checksum {
        return Err(ClientError::Verification(format!(
            "stream checksum {checksum:#018x} != summary checksum {:#018x}",
            summary.checksum
        )));
    }
    if summary.ops != stream.completions.len() as u64 {
        return Err(ClientError::Verification(format!(
            "summary counts {} ops, stream carried {}",
            summary.ops,
            stream.completions.len()
        )));
    }
    if summary.failed != stream.failures.len() as u64 {
        return Err(ClientError::Verification(format!(
            "summary counts {} failures, stream carried {}",
            summary.failed,
            stream.failures.len()
        )));
    }
    Ok(ClientReport {
        params,
        completions: stream.completions,
        failures: stream.failures,
        summary,
        checksum,
        host_seconds,
    })
}

/// Replays the same `(ops, batch)` discipline in process through
/// [`ReplayEngine`] and demands the served stream be bit-identical:
/// per sequence number the same shard, op, finish cycle, and energy
/// bits; per shard the same completion order.
///
/// # Errors
///
/// Returns [`ClientError::Verification`] naming the first divergence.
pub fn verify_against_reference(
    report: &ClientReport,
    ops: &[CodicOp],
    batch: usize,
) -> Result<(), ClientError> {
    let fail = |detail: String| Err(ClientError::Verification(detail));
    if !report.failures.is_empty() {
        return fail(format!(
            "session carried {} typed failures: a fault-armed server cannot \
             verify against the fault-free reference",
            report.failures.len()
        ));
    }
    if report.completions.len() != ops.len() {
        return fail(format!(
            "{} ops submitted, {} completions received",
            ops.len(),
            report.completions.len()
        ));
    }
    let mut engine = ReplayEngine::new(&report.params);
    let mut reference = Vec::with_capacity(ops.len());
    // The same clamp `replay` applies, so both sides chunk identically.
    for chunk in ops.chunks(batch.clamp(1, proto::MAX_BATCH_OPS)) {
        reference.extend(
            engine
                .submit_batch(chunk)
                .map_err(|e| ClientError::Verification(format!("reference rejected: {e}")))?,
        );
    }
    reference.extend(engine.flush());

    // The reference in its emission order must equal the socket stream
    // in its emission order — order preservation and bit-identity in one
    // comparison.
    for (i, (got, want)) in report.completions.iter().zip(&reference).enumerate() {
        let want = want.to_wire();
        if got.seq != want.seq {
            return fail(format!(
                "stream position {i}: seq {} served, {} expected (order diverged)",
                got.seq, want.seq
            ));
        }
        if got.shard != want.shard || got.op != want.op {
            return fail(format!(
                "seq {}: routed to shard {} as {:?}, expected shard {} {:?}",
                got.seq, got.shard, got.op, want.shard, want.op
            ));
        }
        if got.finish_cycle != want.finish_cycle {
            return fail(format!(
                "seq {}: finish cycle {} served, {} expected",
                got.seq, got.finish_cycle, want.finish_cycle
            ));
        }
        if got.energy_nj.to_bits() != want.energy_nj.to_bits()
            || got.busy_cycles != want.busy_cycles
            || got.activations != want.activations
        {
            return fail(format!("seq {}: accounted cost diverged", got.seq));
        }
        if got.fingerprint != want.fingerprint {
            return fail(format!(
                "seq {}: row fingerprint {:#018x} served, {:#018x} expected \
                 (computed values diverged)",
                got.seq, got.fingerprint, want.fingerprint
            ));
        }
    }
    Ok(())
}
