//! The replay-rate governor: caps a session's host-side replay rate at a
//! target rows per second.
//!
//! The governor shapes *wall-clock* pacing only — it never touches the
//! device clocks, so completion cycles and energies are bit-identical
//! with and without a cap (the engine's timeline is a pure function of
//! the submission sequence). The arithmetic is pure ([`pause_needed`])
//! so it can be unit-tested without sleeping; [`RateGovernor`] wraps it
//! around a monotonic clock for the serving loop.

use std::time::{Duration, Instant};

/// How long a session that has replayed `rows` rows in `elapsed` must
/// pause to stay at or under `target_rows_per_s`. `None` when it is at
/// or behind the target pace (or the target is 0 = uncapped).
#[must_use]
pub fn pause_needed(rows: u64, elapsed: Duration, target_rows_per_s: u64) -> Option<Duration> {
    if target_rows_per_s == 0 || rows == 0 {
        return None;
    }
    let due = Duration::from_secs_f64(rows as f64 / target_rows_per_s as f64);
    due.checked_sub(elapsed).filter(|d| !d.is_zero())
}

/// Wall-clock pacing state of one session.
#[derive(Debug)]
pub struct RateGovernor {
    target_rows_per_s: u64,
    started: Instant,
    rows: u64,
}

impl RateGovernor {
    /// A governor targeting `target_rows_per_s` (0 = uncapped).
    #[must_use]
    pub fn new(target_rows_per_s: u64) -> Self {
        RateGovernor {
            target_rows_per_s,
            started: Instant::now(),
            rows: 0,
        }
    }

    /// Records `rows` replayed rows and returns how long the serving
    /// loop must sleep to hold the target rate.
    pub fn on_rows(&mut self, rows: u64) -> Option<Duration> {
        self.rows += rows;
        pause_needed(self.rows, self.started.elapsed(), self.target_rows_per_s)
    }

    /// Rows recorded so far.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_never_pauses() {
        assert_eq!(pause_needed(1_000_000, Duration::ZERO, 0), None);
        let mut g = RateGovernor::new(0);
        assert_eq!(g.on_rows(u64::MAX / 2), None);
    }

    #[test]
    fn ahead_of_pace_pauses_for_the_deficit() {
        // 1000 rows at 100 rows/s are due at t = 10 s; at t = 4 s the
        // session must pause 6 s.
        let pause = pause_needed(1_000, Duration::from_secs(4), 100).unwrap();
        assert!((pause.as_secs_f64() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn at_or_behind_pace_does_not_pause() {
        assert_eq!(pause_needed(1_000, Duration::from_secs(10), 100), None);
        assert_eq!(pause_needed(1_000, Duration::from_secs(60), 100), None);
        assert_eq!(pause_needed(0, Duration::ZERO, 100), None);
    }

    #[test]
    fn governor_accumulates_rows() {
        let mut g = RateGovernor::new(1_000_000_000);
        g.on_rows(10);
        g.on_rows(32);
        assert_eq!(g.rows(), 42);
    }

    #[test]
    fn capped_replay_is_visibly_throttled() {
        // A generous burst against a tiny target must demand a pause.
        let mut g = RateGovernor::new(1);
        let pause = g.on_rows(10).expect("10 rows at 1 row/s must pause");
        assert!(pause.as_secs_f64() > 8.0, "{pause:?}");
    }
}
