//! Trace-replay serving layer over the CODIC device pool.
//!
//! This crate turns the repository from a library into a running
//! service: a long-lived `replay-server` accepts Unix-socket
//! connections, decodes framed trace batches (secure-deallocation /
//! cold-boot row operations plus ordinary read/write traffic) into
//! typed [`CodicOp`](codic_core::ops::CodicOp)s, submits them through
//! [`DevicePool::submit_all_async`](codic_core::pool::DevicePool::submit_all_async),
//! drives the shard clocks, and streams typed completions (finish
//! cycle plus accounted energy) back per connection; `replay-client`
//! plays a trace file and verifies the completion stream bit-for-bit
//! against an in-process reference replay.
//!
//! The crate is std-only (no network or async-runtime dependencies):
//! transport is [`std::os::unix::net`], framing is the length-prefixed
//! binary protocol of [`proto`] (specified in `docs/PROTOCOL.md`), and
//! completions resolve through the repository's own
//! [`OpFuture`](codic_core::executor::OpFuture) machinery.
//!
//! The layer map and the life of one operation — from policy check and
//! MRS install through FR-FCFS scheduling, the event horizon, and
//! future resolution — are documented in `docs/ARCHITECTURE.md`.
//!
//! - [`proto`] — the wire protocol (frames, op/completion encoding,
//!   session checksum), in lockstep with `docs/PROTOCOL.md`;
//! - [`trace`] — the trace-file grammar, parser, and the deterministic
//!   mixed-workload generator;
//! - [`server`] — [`ReplayServer`], the per-session [`ReplayEngine`]
//!   (submission, backpressure, completion-ordered draining), and the
//!   session loop;
//! - [`governor`] — the replay-rate governor (host-side pacing that
//!   never perturbs device cycles);
//! - [`client`] — [`replay`], the cut-tolerant
//!   [`replay_resumable`](client::replay_resumable), and
//!   [`verify_against_reference`](client::verify_against_reference);
//! - [`chaos`] — the deterministic seeded chaos transport (corruption,
//!   mid-frame cuts, short I/O, stalls) the recovery tests run over.
//!
//! # Example
//!
//! Serve one session end to end over a real Unix socket:
//!
//! ```
//! use codic_server::client::{replay, verify_against_reference};
//! use codic_server::proto::SessionParams;
//! use codic_server::server::{ReplayServer, ServerConfig};
//! use codic_server::trace::generate_mixed;
//!
//! let socket = std::env::temp_dir().join(format!("codic-doc-{}.sock", std::process::id()));
//! let server = ReplayServer::bind(&socket, ServerConfig::default()).unwrap();
//! let serving = {
//!     let path = socket.clone();
//!     std::thread::spawn(move || {
//!         // `server` owns the listener; serve exactly one session.
//!         server.serve_connections(1).unwrap();
//!         drop(server);
//!         let _ = path; // socket file removed on drop
//!     })
//! };
//!
//! // Play a small deterministic mixed trace in batches of 64.
//! let ops = generate_mixed(256, 8192, 7);
//! let report = replay(&socket, &SessionParams::defaults(), &ops, 64).unwrap();
//! assert_eq!(report.summary.ops, 256);
//! assert!(report.summary.total_energy_nj > 0.0);
//!
//! // The served stream is bit-identical to the in-process reference.
//! verify_against_reference(&report, &ops, 64).unwrap();
//! serving.join().unwrap();
//! ```

pub mod chaos;
pub mod cli;
pub mod client;
pub mod governor;
pub mod proto;
pub mod server;
pub mod trace;

pub use client::{replay, ClientReport};
pub use server::{ReplayEngine, ReplayServer, ServerConfig, ShutdownHandle};
