//! The replay wire protocol: length-prefixed binary frames over a byte
//! stream.
//!
//! This module is the single source of truth for the format specified in
//! [`docs/PROTOCOL.md`](https://github.com/codic/codic/blob/main/docs/PROTOCOL.md)
//! (in this repository: `docs/PROTOCOL.md`); the two are kept in lockstep
//! and every frame type below has a round-trip unit test. All integers
//! are little-endian. A frame is
//!
//! ```text
//! u32 length   — byte count of everything after this field
//! u8  type     — frame-type tag (Hello = 0x01, … see `Frame`)
//! payload      — length - 1 bytes, layout per frame type
//! ```
//!
//! Operations travel as a variable-length unit: a `u8` op code followed
//! by one `u64` address (9 bytes) or, for the two-address and
//! pattern-carrying bulk-bitwise operations, two `u64` operands
//! (17 bytes); completions come back typed with the finish cycle, the
//! accounted occupancy/energy cost, the owning shard and — for
//! bulk-bitwise compute operations — the FNV-1a-64 fingerprint of the
//! written row's simulated contents. The session checksum ([`Fnv64`])
//! hashes every `Completion` and `Failed` frame payload in emission
//! order, so client and server can agree on the whole stream (values
//! included) with one `u64` compare.
//!
//! # Example
//!
//! ```
//! use codic_core::ops::{CodicOp, VariantId};
//! use codic_server::proto::{read_frame, write_frame, Frame};
//!
//! let batch = Frame::Batch(vec![
//!     CodicOp::command(VariantId::DetZero, 0x2000),
//!     CodicOp::read(0x40),
//! ]);
//! let mut wire = Vec::new();
//! write_frame(&mut wire, &batch).unwrap();
//! let decoded = read_frame(&mut wire.as_slice()).unwrap();
//! assert_eq!(decoded, batch);
//! ```

use std::fmt;
use std::io::{self, IoSlice, Read, Write};

use codic_core::fault::FaultCause;
use codic_core::ops::{CodicOp, VariantId};

/// The newest protocol version this implementation speaks. A server
/// rejects a [`Frame::Hello`] carrying a version outside
/// [`MIN_PROTOCOL_VERSION`]`..=PROTOCOL_VERSION` with
/// [`ErrorCode::Version`]; within the range it serves the *client's*
/// version and echoes it in the [`Frame::HelloAck`].
///
/// Version 2 added the bulk-bitwise compute operations (op codes
/// `0x04..=0x0A`), the `compute_rows` session parameter, and the
/// fingerprint field on compute completions. Version 3 added the
/// batched [`Frame::Events`] completion transport: a v3 session streams
/// completions and failures packed many-per-frame, while a v2 session
/// receives the identical payloads as individual `Completion` / `Failed`
/// frames. Version 4 made sessions crash/disconnect-tolerant: every
/// frame of a v4 session carries a CRC32C trailer ([`crc32c`]) verified
/// before decode, the [`Frame::HelloAck`] carries a server-minted
/// session token, and the [`Frame::Resume`] / [`Frame::ResumeAck`]
/// handshake lets a reconnecting client continue from its
/// last-delivered event. Version 5 added multi-tenant serving: three
/// QoS/tenancy fields on [`SessionParams`] (`qos_weight`, `tenants`,
/// `quota_ops`, widening the params block from 25 to 32 bytes for v5+
/// sessions only — v2..=v4 layouts are byte-identical to their pins)
/// and the shared-fleet claim caps ([`MAX_TENANT_CLAIM`],
/// [`MAX_QUOTA_CLAIM`]) enforced before any allocation. The session
/// checksum hashes the *payload* units in every version, so it is
/// independent of the negotiated version and of how many connections
/// carried the session.
pub const PROTOCOL_VERSION: u16 = 5;

/// The oldest protocol version the server still accepts in a
/// [`Frame::Hello`]. Version 2 clients interoperate unchanged: they
/// never see an [`Frame::Events`] frame.
pub const MIN_PROTOCOL_VERSION: u16 = 2;

/// Upper bound on the `length` field of a frame; larger values are
/// rejected before any allocation, so a corrupt or hostile length prefix
/// cannot balloon memory.
pub const MAX_FRAME_LEN: u32 = 4 << 20;

/// The most operations one `Batch` frame can carry without tripping
/// [`MAX_FRAME_LEN`] (type byte + `u32` count + up to 17 bytes per op —
/// sized for the widest unit so a batch of any mix fits). Senders clamp
/// their batch size to this.
pub const MAX_BATCH_OPS: usize = (MAX_FRAME_LEN as usize - 5) / 17;

/// Largest tenant-slot count a v5 `Hello` may claim
/// (`SessionParams::tenants`). A server rejects a larger claim with
/// [`ErrorCode::Policy`] *before* negotiating, building an engine, or
/// acquiring any fleet slot — an oversized claim never costs an
/// allocation.
pub const MAX_TENANT_CLAIM: u16 = 4096;

/// Largest per-tenant outstanding-op quota a v5 `Hello` may claim
/// (`SessionParams::quota_ops`), rejected like [`MAX_TENANT_CLAIM`].
pub const MAX_QUOTA_CLAIM: u32 = 1 << 20;

/// Largest QoS weight a session can negotiate; a `Hello` asking for
/// more is clamped here (weights shape fair-admission credit only, so
/// clamping is honest — the ack carries the effective weight).
pub const MAX_QOS_WEIGHT: u8 = 16;

/// Frame-type tags (the `u8` after the length prefix).
mod tag {
    pub const HELLO: u8 = 0x01;
    pub const BATCH: u8 = 0x02;
    pub const FLUSH: u8 = 0x03;
    pub const BYE: u8 = 0x04;
    pub const RESUME: u8 = 0x05;
    pub const HELLO_ACK: u8 = 0x81;
    pub const COMPLETION: u8 = 0x82;
    pub const BATCHED: u8 = 0x83;
    pub const FLUSHED: u8 = 0x84;
    pub const SUMMARY: u8 = 0x85;
    pub const ERROR: u8 = 0x86;
    pub const FAILED: u8 = 0x87;
    pub const EVENTS: u8 = 0x88;
    pub const RESUME_ACK: u8 = 0x89;
}

/// Kind byte of a completion unit inside [`Frame::Events`] (the
/// server's resume journal records units as `(kind, payload)` pairs).
pub const EVENT_COMPLETION: u8 = 0;

/// Kind byte of a failure unit inside [`Frame::Events`].
pub const EVENT_FAILURE: u8 = 1;

/// Wire size of the smallest [`Frame::Events`] unit: a kind byte plus
/// the 29-byte failure payload of a 9-byte op. The decoder's
/// count-versus-length pre-check divides by this, so a hostile count
/// cannot reserve more memory than the payload itself justifies.
const EVENT_UNIT_MIN: usize = 30;

/// Wire size of the widest [`Frame::Events`] unit: a kind byte plus the
/// 56-byte completion payload of a 17-byte compute op with fingerprint.
/// [`EventBuffer::is_full`] keeps this much headroom under
/// [`MAX_FRAME_LEN`], so any next push is guaranteed to fit.
const EVENT_UNIT_MAX: usize = 57;

/// Operation codes of the wire operation unit. Codes `0x00..=0x07` are
/// 9-byte units (code + one `u64` address); `0x08..=0x0A` are 17-byte
/// units (code + two `u64` operands).
mod opcode {
    pub const READ: u8 = 0x00;
    pub const WRITE: u8 = 0x01;
    pub const ROW_CLONE_ZERO: u8 = 0x02;
    pub const LISA_CLONE_ZERO: u8 = 0x03;
    /// Bulk-bitwise row init to zeros (one address).
    pub const ROW_INIT0: u8 = 0x04;
    /// Bulk-bitwise row init to ones (one address).
    pub const ROW_INIT1: u8 = 0x05;
    /// Triple-row-activation majority, AND convention (group base addr).
    pub const MAJ_AND: u8 = 0x06;
    /// Triple-row-activation majority, OR convention (group base addr).
    pub const MAJ_OR: u8 = 0x07;
    /// Dual-contact NOT: src address, then dst address (17 bytes).
    pub const NOT: u8 = 0x08;
    /// Row copy: src address, then dst address (17 bytes).
    pub const ROW_COPY: u8 = 0x09;
    /// Row fill: row address, then the 64-bit fill pattern (17 bytes).
    pub const ROW_FILL: u8 = 0x0A;
    /// `COMMAND_BASE + i` is a CODIC command of `VariantId::ALL[i]`.
    pub const COMMAND_BASE: u8 = 0x10;
}

/// Wire length in bytes of the operation unit with `code`.
fn op_len(code: u8) -> usize {
    match code {
        opcode::NOT | opcode::ROW_COPY | opcode::ROW_FILL => 17,
        _ => 9,
    }
}

/// Session parameters proposed in a [`Frame::Hello`] and echoed, with
/// effective values, in the [`Frame::HelloAck`].
///
/// In a `Hello`, a zero field (and `refresh = 2`) means "use the server's
/// configured default"; the `HelloAck` always carries the concrete
/// effective values the session runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionParams {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub version: u16,
    /// Number of device-pool shards serving the session.
    pub shards: u16,
    /// Module capacity per session, in MiB.
    pub module_mib: u32,
    /// Bound on operations submitted but not yet completed (the
    /// per-connection backpressure window).
    pub max_outstanding: u32,
    /// Replay-rate governor target in rows per second of host time;
    /// 0 = uncapped (the server's own cap, if any, still applies).
    pub target_rows_per_s: u64,
    /// Refresh engine: 0 = disabled, 1 = enabled, 2 (Hello only) =
    /// server default.
    pub refresh: u8,
    /// Rows reserved at the top of the module as the bulk-bitwise
    /// compute region; 0 in a `Hello` = use the server's configured
    /// default (which is itself 0 — compute disabled — unless the server
    /// was started with a region).
    pub compute_rows: u32,
    /// QoS weight for shared-fleet fair admission (v5+; on the wire only
    /// when `version >= 5`): a weight-w tenant earns w× the
    /// deficit-round-robin credit per rotation. 0 in a `Hello` = server
    /// default (1); values past [`MAX_QOS_WEIGHT`] are clamped. Decodes
    /// as 0 for v2..=v4 sessions.
    pub qos_weight: u8,
    /// Tenant-slot count (v5+). In a `Hello`: the most co-tenants the
    /// client will accept sharing a fleet with (0 = any); claims past
    /// [`MAX_TENANT_CLAIM`] are rejected before allocation. In the ack:
    /// the serving fleet's slot count, or 0 when the session runs on a
    /// private pool. Decodes as 0 for v2..=v4 sessions.
    pub tenants: u16,
    /// Per-tenant outstanding-op quota (v5+). In a `Hello`: a requested
    /// additional bound on `max_outstanding` (0 = none); claims past
    /// [`MAX_QUOTA_CLAIM`] are rejected before allocation. In the ack:
    /// the effective quota (equal to the effective `max_outstanding`).
    /// Decodes as 0 for v2..=v4 sessions.
    pub quota_ops: u32,
}

impl SessionParams {
    /// A `Hello` that defers every choice to the server's defaults.
    #[must_use]
    pub fn defaults() -> Self {
        SessionParams {
            version: PROTOCOL_VERSION,
            shards: 0,
            module_mib: 0,
            max_outstanding: 0,
            target_rows_per_s: 0,
            refresh: 2,
            compute_rows: 0,
            qos_weight: 0,
            tenants: 0,
            quota_ops: 0,
        }
    }
}

/// One finished operation as streamed back to the client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireCompletion {
    /// Zero-based submission sequence number within the session (frames
    /// arrive in deterministic completion order, not sequence order).
    pub seq: u64,
    /// The pool shard that served the operation.
    pub shard: u16,
    /// The operation that completed.
    pub op: CodicOp,
    /// Memory cycle at which the operation finished on its shard.
    pub finish_cycle: u64,
    /// Bank/bus occupancy of the operation in memory cycles.
    pub busy_cycles: u32,
    /// Activations charged against the rank's tRRD/tFAW windows.
    pub activations: u8,
    /// Accounted energy of the operation in nanojoules.
    pub energy_nj: f64,
    /// FNV-1a-64 fingerprint of the written row's simulated contents —
    /// carried on the wire (and hashed into the session checksum) only
    /// for bulk-bitwise compute operations; decodes as 0 for everything
    /// else, and senders must set it to 0 for non-compute operations so
    /// round trips are exact.
    pub fingerprint: u64,
}

/// One failed operation as streamed back to the client — the faulted
/// sibling of [`WireCompletion`]. A session with fault injection
/// disabled never emits this frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFailure {
    /// Zero-based submission sequence number within the session.
    pub seq: u64,
    /// The pool shard the operation was routed to.
    pub shard: u16,
    /// The operation that failed.
    pub op: CodicOp,
    /// Memory cycle at which the failure was delivered on its shard.
    pub at_cycle: u64,
    /// Why the operation failed.
    pub cause: FaultCause,
    /// Issue attempts consumed (1 = failed on the first issue).
    pub attempts: u8,
}

/// One unit of a batched [`Frame::Events`] stream: either a finished or
/// a failed operation, in the server's deterministic emission order.
///
/// On the wire each unit is a `u8` kind (0 = completion, 1 = failure)
/// followed by the *exact* payload bytes of the equivalent standalone
/// [`Frame::Completion`] / [`Frame::Failed`] frame. The kind byte and
/// the frame envelope are **not** hashed into the session checksum —
/// only the payloads are, in order — so a batched stream checksums
/// identically to the unbatched stream carrying the same events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionEvent {
    /// A finished operation, payload-identical to [`Frame::Completion`].
    Completion(WireCompletion),
    /// A failed operation, payload-identical to [`Frame::Failed`].
    Failure(WireFailure),
}

/// The wire code of a [`FaultCause`].
fn cause_code(cause: FaultCause) -> u8 {
    match cause {
        FaultCause::Misfire => 1,
        FaultCause::ClockStuck => 2,
        FaultCause::Quarantined => 3,
    }
}

fn cause_from_u8(raw: u8) -> Result<FaultCause, ProtoError> {
    match raw {
        1 => Ok(FaultCause::Misfire),
        2 => Ok(FaultCause::ClockStuck),
        3 => Ok(FaultCause::Quarantined),
        other => Err(ProtoError::UnknownFaultCause(other)),
    }
}

/// End-of-batch acknowledgement: the server sends this after the
/// completions a [`Frame::Batch`] drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// Sequence number assigned to the batch's first operation.
    pub seq_base: u64,
    /// Operations accepted from the batch.
    pub accepted: u32,
    /// Completion frames emitted for this batch boundary.
    pub emitted: u32,
    /// Operations still in flight after the batch (always at or below
    /// the session's `max_outstanding`).
    pub outstanding: u64,
}

/// End-of-flush acknowledgement: everything submitted has completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushAck {
    /// Completion frames emitted by this flush.
    pub emitted: u64,
    /// The slowest shard's current cycle after the flush.
    pub now_max: u64,
}

/// Session totals, sent in response to [`Frame::Bye`] before the server
/// closes the connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Operations completed *successfully* over the session.
    pub ops: u64,
    /// How many of them were row operations (CODIC commands and clone
    /// baselines), as opposed to ordinary reads/writes.
    pub row_ops: u64,
    /// Operations delivered as typed failures ([`Frame::Failed`]);
    /// always 0 with fault injection disabled.
    pub failed: u64,
    /// The largest finish cycle observed on any shard.
    pub max_finish_cycle: u64,
    /// Total accounted energy in nanojoules (successful ops only).
    pub total_energy_nj: f64,
    /// [`Fnv64`] over every `Completion` *and* `Failed` frame payload,
    /// in emission order.
    pub checksum: u64,
}

/// Client → server request to continue a parked session on a fresh
/// connection (protocol ≥ 4). Must be the *first* frame of the new
/// connection, in place of a [`Frame::Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeRequest {
    /// Protocol version the original session negotiated (≥ 4).
    pub version: u16,
    /// The session token the [`Frame::HelloAck`] minted.
    pub token: u64,
    /// Events (completions + failures) the client has fully absorbed.
    /// The server re-emits its journal from this index, so nothing is
    /// lost and nothing is delivered twice.
    pub events_received: u64,
}

/// Server → client acceptance of a [`Frame::Resume`] (protocol ≥ 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeAck {
    /// The effective session parameters, unchanged from the original
    /// [`Frame::HelloAck`].
    pub params: SessionParams,
    /// The session token, echoed.
    pub token: u64,
    /// Operations the session has *accepted* so far — the sequence
    /// number the next submitted operation will receive. The client
    /// resumes submission here; because the server only ever accepts
    /// whole batches, this always lands on the client's batch grid and
    /// the replayed timeline is bit-identical to an uninterrupted run.
    pub next_seq: u64,
    /// Journal events the server re-emits immediately after this ack
    /// (those past the request's `events_received`).
    pub replay_events: u64,
    /// 1 when the session had already ended (the [`Frame::Bye`] was
    /// processed but the [`Frame::Summary`] was lost in the cut): the
    /// server re-emits the journal tail and the `Summary`, then closes.
    pub finished: u8,
}

/// Error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame could not be decoded, or arrived out of protocol order.
    Malformed = 1,
    /// The batch was rejected by the device policy (all-or-nothing: no
    /// operation of the batch was enqueued). The session continues.
    Policy = 2,
    /// The client's protocol version is not supported.
    Version = 3,
    /// An internal server failure.
    Internal = 4,
    /// The session can no longer serve traffic (e.g. every pool shard
    /// is quarantined, or the server is shutting down).
    Unavailable = 5,
}

impl ErrorCode {
    fn from_u8(raw: u8) -> Result<Self, ProtoError> {
        match raw {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::Policy),
            3 => Ok(ErrorCode::Version),
            4 => Ok(ErrorCode::Internal),
            5 => Ok(ErrorCode::Unavailable),
            other => Err(ProtoError::UnknownErrorCode(other)),
        }
    }
}

/// Every frame of the replay protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: opens a session, proposing [`SessionParams`].
    Hello(SessionParams),
    /// Server → client: accepts the session with the effective params
    /// and — for protocol ≥ 4 — a server-minted session token the
    /// client presents in a [`Frame::Resume`] to reconnect. For
    /// versions below 4 the token is not on the wire and must be 0, so
    /// round trips are exact.
    HelloAck {
        /// The effective session parameters.
        params: SessionParams,
        /// The resume token (protocol ≥ 4; 0 otherwise).
        token: u64,
    },
    /// Client → server (protocol ≥ 4): first frame of a reconnection,
    /// continuing a parked session instead of opening a new one.
    Resume(ResumeRequest),
    /// Server → client (protocol ≥ 4): accepts a [`Frame::Resume`];
    /// the journal replay follows immediately.
    ResumeAck(ResumeAck),
    /// Client → server: a batch of operations to submit, in order.
    Batch(Vec<CodicOp>),
    /// Client → server: drive every shard to idle and emit everything.
    Flush,
    /// Client → server: end of session (server flushes, then summarizes).
    Bye,
    /// Server → client: one finished operation.
    Completion(WireCompletion),
    /// Server → client: one operation that failed with a typed cause.
    Failed(WireFailure),
    /// Server → client (protocol ≥ 3): a run of completions and
    /// failures packed into one frame, in emission order. Byte-for-byte,
    /// each unit is a kind byte plus the standalone frame's payload.
    Events(Vec<SessionEvent>),
    /// Server → client: end of a batch's completion burst.
    Batched(BatchAck),
    /// Server → client: end of a flush's completion burst.
    Flushed(FlushAck),
    /// Server → client: session totals, then the connection closes.
    Summary(Summary),
    /// Server → client: a protocol or policy error.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

/// Decode-side failures.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed (including EOF mid-frame).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A frame with a length of zero has no type byte.
    Empty,
    /// The frame-type tag is not part of this protocol version.
    UnknownFrame(u8),
    /// An operation code is not part of this protocol version.
    UnknownOp(u8),
    /// An error frame carried an unknown error code.
    UnknownErrorCode(u8),
    /// A failed-operation frame carried an unknown fault cause.
    UnknownFaultCause(u8),
    /// An events frame carried an unknown unit kind byte.
    UnknownEventKind(u8),
    /// The payload is shorter or longer than its frame type requires.
    BadLength {
        /// The offending frame-type tag.
        tag: u8,
        /// Payload bytes received.
        got: usize,
    },
    /// An error frame's detail is not valid UTF-8.
    BadUtf8,
    /// A CRC-framed (protocol ≥ 4) frame failed its CRC32C trailer
    /// check: the bytes were corrupted in transit. The frame was
    /// dropped before any decode; the stream itself is suspect, so the
    /// peer reconnects and resumes rather than guessing at alignment.
    Crc {
        /// The CRC32C of the received body bytes.
        expected: u32,
        /// The trailer the frame actually carried.
        got: u32,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "stream error: {e}"),
            ProtoError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} cap")
            }
            ProtoError::Empty => write!(f, "zero-length frame has no type byte"),
            ProtoError::UnknownFrame(tag) => write!(f, "unknown frame type {tag:#04x}"),
            ProtoError::UnknownOp(code) => write!(f, "unknown operation code {code:#04x}"),
            ProtoError::UnknownErrorCode(code) => write!(f, "unknown error code {code}"),
            ProtoError::UnknownFaultCause(code) => write!(f, "unknown fault cause {code}"),
            ProtoError::UnknownEventKind(kind) => write!(f, "unknown event kind {kind}"),
            ProtoError::BadLength { tag, got } => {
                write!(f, "frame {tag:#04x} has a malformed payload of {got} bytes")
            }
            ProtoError::BadUtf8 => write!(f, "error detail is not valid UTF-8"),
            ProtoError::Crc { expected, got } => write!(
                f,
                "frame CRC32C mismatch: computed {expected:#010x}, trailer carried {got:#010x}"
            ),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// The wire op code of a [`CodicOp`].
fn op_code(op: CodicOp) -> u8 {
    match op {
        CodicOp::Read { .. } => opcode::READ,
        CodicOp::Write { .. } => opcode::WRITE,
        CodicOp::RowCloneZero { .. } => opcode::ROW_CLONE_ZERO,
        CodicOp::LisaCloneZero { .. } => opcode::LISA_CLONE_ZERO,
        CodicOp::RowInit { ones: false, .. } => opcode::ROW_INIT0,
        CodicOp::RowInit { ones: true, .. } => opcode::ROW_INIT1,
        CodicOp::MajAnd { .. } => opcode::MAJ_AND,
        CodicOp::MajOr { .. } => opcode::MAJ_OR,
        CodicOp::Not { .. } => opcode::NOT,
        CodicOp::RowCopy { .. } => opcode::ROW_COPY,
        CodicOp::RowFill { .. } => opcode::ROW_FILL,
        CodicOp::Command { variant, .. } => {
            let index = VariantId::ALL
                .iter()
                .position(|&v| v == variant)
                .expect("every variant is in ALL");
            opcode::COMMAND_BASE + index as u8
        }
    }
}

/// Encodes one operation as its wire unit (9 or 17 bytes).
fn put_op(buf: &mut Vec<u8>, op: CodicOp) {
    buf.push(op_code(op));
    match op {
        CodicOp::Not { src_addr, dst_addr } | CodicOp::RowCopy { src_addr, dst_addr } => {
            buf.extend_from_slice(&src_addr.to_le_bytes());
            buf.extend_from_slice(&dst_addr.to_le_bytes());
        }
        CodicOp::RowFill { row_addr, pattern } => {
            buf.extend_from_slice(&row_addr.to_le_bytes());
            buf.extend_from_slice(&pattern.to_le_bytes());
        }
        op => buf.extend_from_slice(&op.row_addr().to_le_bytes()),
    }
}

/// Decodes the wire unit starting at `bytes`, returning the operation
/// and the number of bytes consumed.
fn get_op(bytes: &[u8]) -> Result<(CodicOp, usize), ProtoError> {
    let code = *bytes.first().ok_or(ProtoError::Empty)?;
    let len = op_len(code);
    if bytes.len() < len {
        return Err(ProtoError::BadLength {
            tag: code,
            got: bytes.len(),
        });
    }
    let a = u64::from_le_bytes(bytes[1..9].try_into().expect("unit operand"));
    let op = match code {
        opcode::READ => CodicOp::read(a),
        opcode::WRITE => CodicOp::write(a),
        opcode::ROW_CLONE_ZERO => CodicOp::RowCloneZero { row_addr: a },
        opcode::LISA_CLONE_ZERO => CodicOp::LisaCloneZero { row_addr: a },
        opcode::ROW_INIT0 => CodicOp::RowInit {
            row_addr: a,
            ones: false,
        },
        opcode::ROW_INIT1 => CodicOp::RowInit {
            row_addr: a,
            ones: true,
        },
        opcode::MAJ_AND => CodicOp::MajAnd { row_addr: a },
        opcode::MAJ_OR => CodicOp::MajOr { row_addr: a },
        opcode::NOT | opcode::ROW_COPY | opcode::ROW_FILL => {
            let b = u64::from_le_bytes(bytes[9..17].try_into().expect("unit operand"));
            match code {
                opcode::NOT => CodicOp::Not {
                    src_addr: a,
                    dst_addr: b,
                },
                opcode::ROW_COPY => CodicOp::RowCopy {
                    src_addr: a,
                    dst_addr: b,
                },
                _ => CodicOp::RowFill {
                    row_addr: a,
                    pattern: b,
                },
            }
        }
        code => {
            let index = code.wrapping_sub(opcode::COMMAND_BASE) as usize;
            if code >= opcode::COMMAND_BASE && index < VariantId::ALL.len() {
                CodicOp::command(VariantId::ALL[index], a)
            } else {
                return Err(ProtoError::UnknownOp(code));
            }
        }
    };
    Ok((op, len))
}

/// Wire size of a params block for `version`: the pinned 25 bytes
/// through v4, widened to 32 by v5's QoS/tenancy tail. The version
/// field itself (bytes 0..2) selects the layout, so decoders read it
/// first and then demand the exact matching length.
fn params_len(version: u16) -> usize {
    if version >= 5 {
        32
    } else {
        25
    }
}

fn put_params(buf: &mut Vec<u8>, p: &SessionParams) {
    buf.extend_from_slice(&p.version.to_le_bytes());
    buf.extend_from_slice(&p.shards.to_le_bytes());
    buf.extend_from_slice(&p.module_mib.to_le_bytes());
    buf.extend_from_slice(&p.max_outstanding.to_le_bytes());
    buf.extend_from_slice(&p.target_rows_per_s.to_le_bytes());
    buf.push(p.refresh);
    buf.extend_from_slice(&p.compute_rows.to_le_bytes());
    // The QoS/tenancy tail travels only on protocol ≥ 5, keeping the
    // v2..=v4 params block byte-identical to its pinned layout.
    if p.version >= 5 {
        buf.push(p.qos_weight);
        buf.extend_from_slice(&p.tenants.to_le_bytes());
        buf.extend_from_slice(&p.quota_ops.to_le_bytes());
    }
}

fn get_params(bytes: &[u8], tag: u8) -> Result<SessionParams, ProtoError> {
    let bad = || ProtoError::BadLength {
        tag,
        got: bytes.len(),
    };
    if bytes.len() < 25 {
        return Err(bad());
    }
    let version = u16::from_le_bytes(bytes[0..2].try_into().expect("sized"));
    if bytes.len() != params_len(version) {
        return Err(bad());
    }
    let v5 = version >= 5;
    Ok(SessionParams {
        version,
        shards: u16::from_le_bytes(bytes[2..4].try_into().expect("sized")),
        module_mib: u32::from_le_bytes(bytes[4..8].try_into().expect("sized")),
        max_outstanding: u32::from_le_bytes(bytes[8..12].try_into().expect("sized")),
        target_rows_per_s: u64::from_le_bytes(bytes[12..20].try_into().expect("sized")),
        refresh: bytes[20],
        compute_rows: u32::from_le_bytes(bytes[21..25].try_into().expect("sized")),
        qos_weight: if v5 { bytes[25] } else { 0 },
        tenants: if v5 {
            u16::from_le_bytes(bytes[26..28].try_into().expect("sized"))
        } else {
            0
        },
        quota_ops: if v5 {
            u32::from_le_bytes(bytes[28..32].try_into().expect("sized"))
        } else {
            0
        },
    })
}

/// Serializes `frame` as `type byte + payload` (everything after the
/// length prefix), appending to `buf`.
///
/// This is also the byte sequence the session checksum hashes for
/// completion frames (minus the type byte — see [`completion_payload`]).
pub fn encode_body(frame: &Frame, buf: &mut Vec<u8>) {
    match frame {
        Frame::Hello(p) => {
            buf.push(tag::HELLO);
            put_params(buf, p);
        }
        Frame::HelloAck { params, token } => {
            buf.push(tag::HELLO_ACK);
            put_params(buf, params);
            // The token travels only on protocol ≥ 4 (the version field
            // tells the decoder which layout to expect), keeping the v2
            // and v3 acks byte-identical to their pinned layouts.
            if params.version >= 4 {
                buf.extend_from_slice(&token.to_le_bytes());
            }
        }
        Frame::Resume(r) => {
            buf.push(tag::RESUME);
            buf.extend_from_slice(&r.version.to_le_bytes());
            buf.extend_from_slice(&r.token.to_le_bytes());
            buf.extend_from_slice(&r.events_received.to_le_bytes());
        }
        Frame::ResumeAck(a) => {
            buf.push(tag::RESUME_ACK);
            put_params(buf, &a.params);
            buf.extend_from_slice(&a.token.to_le_bytes());
            buf.extend_from_slice(&a.next_seq.to_le_bytes());
            buf.extend_from_slice(&a.replay_events.to_le_bytes());
            buf.push(a.finished);
        }
        Frame::Batch(ops) => {
            buf.push(tag::BATCH);
            buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for &op in ops {
                put_op(buf, op);
            }
        }
        Frame::Flush => buf.push(tag::FLUSH),
        Frame::Bye => buf.push(tag::BYE),
        Frame::Completion(c) => {
            buf.push(tag::COMPLETION);
            completion_payload(c, buf);
        }
        Frame::Failed(x) => {
            buf.push(tag::FAILED);
            failure_payload(x, buf);
        }
        Frame::Events(events) => {
            buf.push(tag::EVENTS);
            buf.extend_from_slice(&(events.len() as u32).to_le_bytes());
            for event in events {
                match event {
                    SessionEvent::Completion(c) => {
                        buf.push(0);
                        completion_payload(c, buf);
                    }
                    SessionEvent::Failure(x) => {
                        buf.push(1);
                        failure_payload(x, buf);
                    }
                }
            }
        }
        Frame::Batched(a) => {
            buf.push(tag::BATCHED);
            buf.extend_from_slice(&a.seq_base.to_le_bytes());
            buf.extend_from_slice(&a.accepted.to_le_bytes());
            buf.extend_from_slice(&a.emitted.to_le_bytes());
            buf.extend_from_slice(&a.outstanding.to_le_bytes());
        }
        Frame::Flushed(a) => {
            buf.push(tag::FLUSHED);
            buf.extend_from_slice(&a.emitted.to_le_bytes());
            buf.extend_from_slice(&a.now_max.to_le_bytes());
        }
        Frame::Summary(s) => {
            buf.push(tag::SUMMARY);
            buf.extend_from_slice(&s.ops.to_le_bytes());
            buf.extend_from_slice(&s.row_ops.to_le_bytes());
            buf.extend_from_slice(&s.failed.to_le_bytes());
            buf.extend_from_slice(&s.max_finish_cycle.to_le_bytes());
            buf.extend_from_slice(&s.total_energy_nj.to_bits().to_le_bytes());
            buf.extend_from_slice(&s.checksum.to_le_bytes());
        }
        Frame::Error { code, detail } => {
            buf.push(tag::ERROR);
            buf.push(*code as u8);
            let detail = detail.as_bytes();
            let len = detail.len().min(u16::MAX as usize);
            buf.extend_from_slice(&(len as u16).to_le_bytes());
            buf.extend_from_slice(&detail[..len]);
        }
    }
}

/// The completion payload — a unit the session checksum ([`Fnv64`])
/// hashes, in emission order. 40 bytes for the classic operations
/// (byte-identical to protocol v1, so their pinned session checksums
/// are unchanged); bulk-bitwise compute operations carry their wider op
/// unit and a trailing row fingerprint (48 or 56 bytes), which makes a
/// pinned replay checksum value-verifying.
pub fn completion_payload(c: &WireCompletion, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&c.seq.to_le_bytes());
    buf.extend_from_slice(&c.shard.to_le_bytes());
    put_op(buf, c.op);
    buf.extend_from_slice(&c.finish_cycle.to_le_bytes());
    buf.extend_from_slice(&c.busy_cycles.to_le_bytes());
    buf.push(c.activations);
    buf.extend_from_slice(&c.energy_nj.to_bits().to_le_bytes());
    if c.op.is_compute() {
        buf.extend_from_slice(&c.fingerprint.to_le_bytes());
    }
}

/// The failed-operation payload (29 bytes, or 37 with a 17-byte op
/// unit; failures carry no fingerprint) — hashed into the session
/// checksum exactly like a completion payload, in emission order.
pub fn failure_payload(x: &WireFailure, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&x.seq.to_le_bytes());
    buf.extend_from_slice(&x.shard.to_le_bytes());
    put_op(buf, x.op);
    buf.extend_from_slice(&x.at_cycle.to_le_bytes());
    buf.push(cause_code(x.cause));
    buf.push(x.attempts);
}

/// Decodes a completion payload *prefix*, returning the completion and
/// the bytes consumed (40, 48 or 56) — the shared parser behind the
/// standalone [`Frame::Completion`] arm (which then requires the prefix
/// to be the whole payload) and the [`Frame::Events`] walk (which
/// continues at the next unit).
fn get_completion(payload: &[u8]) -> Result<(WireCompletion, usize), ProtoError> {
    let bad = |got: usize| ProtoError::BadLength {
        tag: tag::COMPLETION,
        got,
    };
    if payload.len() < 40 {
        return Err(bad(payload.len()));
    }
    let (op, used) = get_op(&payload[10..])?;
    // 10 header bytes + the op unit + 21 cost bytes, plus the trailing
    // fingerprint on compute operations only.
    let base = 10 + used;
    let want = base + 21 + if op.is_compute() { 8 } else { 0 };
    if payload.len() < want {
        return Err(bad(payload.len()));
    }
    let completion = WireCompletion {
        seq: u64::from_le_bytes(payload[0..8].try_into().expect("sized")),
        shard: u16::from_le_bytes(payload[8..10].try_into().expect("sized")),
        op,
        finish_cycle: u64::from_le_bytes(payload[base..base + 8].try_into().expect("sized")),
        busy_cycles: u32::from_le_bytes(payload[base + 8..base + 12].try_into().expect("sized")),
        activations: payload[base + 12],
        energy_nj: f64::from_bits(u64::from_le_bytes(
            payload[base + 13..base + 21].try_into().expect("sized"),
        )),
        fingerprint: if op.is_compute() {
            u64::from_le_bytes(payload[base + 21..base + 29].try_into().expect("sized"))
        } else {
            0
        },
    };
    Ok((completion, want))
}

/// Decodes a failed-operation payload *prefix*, returning the failure
/// and the bytes consumed (29 or 37) — the faulted sibling of
/// [`get_completion`], shared the same way.
fn get_failure(payload: &[u8]) -> Result<(WireFailure, usize), ProtoError> {
    let bad = |got: usize| ProtoError::BadLength {
        tag: tag::FAILED,
        got,
    };
    if payload.len() < 29 {
        return Err(bad(payload.len()));
    }
    let (op, used) = get_op(&payload[10..])?;
    let base = 10 + used;
    let want = base + 10;
    if payload.len() < want {
        return Err(bad(payload.len()));
    }
    let failure = WireFailure {
        seq: u64::from_le_bytes(payload[0..8].try_into().expect("sized")),
        shard: u16::from_le_bytes(payload[8..10].try_into().expect("sized")),
        op,
        at_cycle: u64::from_le_bytes(payload[base..base + 8].try_into().expect("sized")),
        cause: cause_from_u8(payload[base + 8])?,
        attempts: payload[base + 9],
    };
    Ok((failure, want))
}

/// Decodes a `type byte + payload` body (everything after the length
/// prefix) back into a [`Frame`].
///
/// # Errors
///
/// Returns the [`ProtoError`] describing the malformation.
pub fn decode_body(body: &[u8]) -> Result<Frame, ProtoError> {
    let (&tag, payload) = body.split_first().ok_or(ProtoError::Empty)?;
    let bad = |got: usize| ProtoError::BadLength { tag, got };
    match tag {
        tag::HELLO => Ok(Frame::Hello(get_params(payload, tag)?)),
        tag::HELLO_ACK => {
            // The params block (25 bytes through v4, 32 at v5) plus a
            // token for protocol ≥ 4. The params' own version field
            // selects the layout, and a mismatch between version and
            // length is a typed error.
            if payload.len() < 25 {
                return Err(bad(payload.len()));
            }
            let version = u16::from_le_bytes(payload[0..2].try_into().expect("sized"));
            let plen = params_len(version);
            let want = plen + if version >= 4 { 8 } else { 0 };
            if payload.len() != want {
                return Err(bad(payload.len()));
            }
            let params = get_params(&payload[..plen], tag)?;
            let token = if version >= 4 {
                u64::from_le_bytes(payload[plen..plen + 8].try_into().expect("sized"))
            } else {
                0
            };
            Ok(Frame::HelloAck { params, token })
        }
        tag::RESUME => {
            if payload.len() != 18 {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Resume(ResumeRequest {
                version: u16::from_le_bytes(payload[0..2].try_into().expect("sized")),
                token: u64::from_le_bytes(payload[2..10].try_into().expect("sized")),
                events_received: u64::from_le_bytes(payload[10..18].try_into().expect("sized")),
            }))
        }
        tag::RESUME_ACK => {
            // params block + token + next_seq + replay_events + finished:
            // 50 bytes with v4 params, 57 with v5's widened block.
            if payload.len() < 50 {
                return Err(bad(payload.len()));
            }
            let version = u16::from_le_bytes(payload[0..2].try_into().expect("sized"));
            let plen = params_len(version);
            if payload.len() != plen + 25 {
                return Err(bad(payload.len()));
            }
            Ok(Frame::ResumeAck(ResumeAck {
                params: get_params(&payload[..plen], tag)?,
                token: u64::from_le_bytes(payload[plen..plen + 8].try_into().expect("sized")),
                next_seq: u64::from_le_bytes(
                    payload[plen + 8..plen + 16].try_into().expect("sized"),
                ),
                replay_events: u64::from_le_bytes(
                    payload[plen + 16..plen + 24].try_into().expect("sized"),
                ),
                finished: payload[plen + 24],
            }))
        }
        tag::BATCH => {
            if payload.len() < 4 {
                return Err(bad(payload.len()));
            }
            let count = u32::from_le_bytes(payload[0..4].try_into().expect("sized")) as usize;
            // Units are variable-length, so decoding is a walk: each op
            // code determines how far the next one starts, and the walk
            // must land exactly on the payload's end.
            if count > payload.len() - 4 {
                // Cheap pre-check: even 1-byte units couldn't fit.
                return Err(bad(payload.len()));
            }
            let mut units = &payload[4..];
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                let (op, used) = get_op(units).map_err(|e| match e {
                    ProtoError::Empty | ProtoError::BadLength { .. } => bad(payload.len()),
                    e => e,
                })?;
                ops.push(op);
                units = &units[used..];
            }
            if !units.is_empty() {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Batch(ops))
        }
        tag::FLUSH => {
            if !payload.is_empty() {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Flush)
        }
        tag::BYE => {
            if !payload.is_empty() {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Bye)
        }
        tag::COMPLETION => {
            let (completion, used) = get_completion(payload).map_err(|e| match e {
                ProtoError::Empty | ProtoError::BadLength { .. } => bad(payload.len()),
                e => e,
            })?;
            if payload.len() != used {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Completion(completion))
        }
        tag::FAILED => {
            let (failure, used) = get_failure(payload).map_err(|e| match e {
                ProtoError::Empty | ProtoError::BadLength { .. } => bad(payload.len()),
                e => e,
            })?;
            if payload.len() != used {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Failed(failure))
        }
        tag::EVENTS => {
            if payload.len() < 4 {
                return Err(bad(payload.len()));
            }
            let count = u32::from_le_bytes(payload[0..4].try_into().expect("sized")) as usize;
            // Reject a hostile count before reserving anything: even if
            // every unit were the smallest possible, `count` of them
            // could not exceed the bytes actually present.
            if count > (payload.len() - 4) / EVENT_UNIT_MIN {
                return Err(bad(payload.len()));
            }
            let mut units = &payload[4..];
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                let (&kind, rest) = units.split_first().ok_or_else(|| bad(payload.len()))?;
                let (event, used) = match kind {
                    0 => get_completion(rest).map(|(c, used)| (SessionEvent::Completion(c), used)),
                    1 => get_failure(rest).map(|(x, used)| (SessionEvent::Failure(x), used)),
                    other => return Err(ProtoError::UnknownEventKind(other)),
                }
                .map_err(|e| match e {
                    ProtoError::Empty | ProtoError::BadLength { .. } => bad(payload.len()),
                    e => e,
                })?;
                events.push(event);
                units = &rest[used..];
            }
            if !units.is_empty() {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Events(events))
        }
        tag::BATCHED => {
            if payload.len() != 24 {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Batched(BatchAck {
                seq_base: u64::from_le_bytes(payload[0..8].try_into().expect("sized")),
                accepted: u32::from_le_bytes(payload[8..12].try_into().expect("sized")),
                emitted: u32::from_le_bytes(payload[12..16].try_into().expect("sized")),
                outstanding: u64::from_le_bytes(payload[16..24].try_into().expect("sized")),
            }))
        }
        tag::FLUSHED => {
            if payload.len() != 16 {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Flushed(FlushAck {
                emitted: u64::from_le_bytes(payload[0..8].try_into().expect("sized")),
                now_max: u64::from_le_bytes(payload[8..16].try_into().expect("sized")),
            }))
        }
        tag::SUMMARY => {
            if payload.len() != 48 {
                return Err(bad(payload.len()));
            }
            Ok(Frame::Summary(Summary {
                ops: u64::from_le_bytes(payload[0..8].try_into().expect("sized")),
                row_ops: u64::from_le_bytes(payload[8..16].try_into().expect("sized")),
                failed: u64::from_le_bytes(payload[16..24].try_into().expect("sized")),
                max_finish_cycle: u64::from_le_bytes(payload[24..32].try_into().expect("sized")),
                total_energy_nj: f64::from_bits(u64::from_le_bytes(
                    payload[32..40].try_into().expect("sized"),
                )),
                checksum: u64::from_le_bytes(payload[40..48].try_into().expect("sized")),
            }))
        }
        tag::ERROR => {
            if payload.len() < 3 {
                return Err(bad(payload.len()));
            }
            let code = ErrorCode::from_u8(payload[0])?;
            let len = u16::from_le_bytes(payload[1..3].try_into().expect("sized")) as usize;
            if payload.len() != 3 + len {
                return Err(bad(payload.len()));
            }
            let detail = std::str::from_utf8(&payload[3..]).map_err(|_| ProtoError::BadUtf8)?;
            Ok(Frame::Error {
                code,
                detail: detail.to_string(),
            })
        }
        other => Err(ProtoError::UnknownFrame(other)),
    }
}

/// The CRC32C (Castagnoli) lookup table, built at compile time from the
/// reflected polynomial `0x82F63B78`.
const CRC32C_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Continues a CRC32C computation over `bytes` from `state` (the raw
/// shift-register value, i.e. the complement of the digest so far).
fn crc32c_append(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ CRC32C_TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

/// CRC32C (Castagnoli) of `bytes` — the per-frame integrity trailer of
/// protocol ≥ 4 frames. Standard parameters (reflected polynomial
/// `0x82F63B78`, init and final XOR `0xFFFF_FFFF`), so
/// `crc32c(b"123456789") == 0xE306_9283`.
#[must_use]
pub fn crc32c(bytes: &[u8]) -> u32 {
    !crc32c_append(!0, bytes)
}

/// Splits a CRC-framed body into its payload and verifies the 4-byte
/// CRC32C trailer, returning the payload (tag byte included).
fn check_crc(body: &[u8]) -> Result<&[u8], ProtoError> {
    if body.len() < 5 {
        return Err(ProtoError::BadLength {
            tag: body.first().copied().unwrap_or(0),
            got: body.len(),
        });
    }
    let (payload, trailer) = body.split_at(body.len() - 4);
    let got = u32::from_le_bytes(trailer.try_into().expect("sized"));
    let expected = crc32c(payload);
    if expected != got {
        return Err(ProtoError::Crc { expected, got });
    }
    Ok(payload)
}

/// Decodes the *first* body of a connection, which may be CRC-framed
/// (a protocol ≥ 4 [`Frame::Hello`] or [`Frame::Resume`]) or bare (a
/// v2/v3 `Hello`) — the server cannot know which until it decodes.
///
/// Tries the bare layout first; if that fails and a valid CRC32C
/// trailer is present, decodes the CRC-framed layout. The two never
/// collide: every handshake frame has a fixed payload size, so the
/// 4-byte trailer always makes the bare decode a typed length error,
/// and a frame whose trailer does not verify keeps the bare decode's
/// error. Returns the frame and whether it was CRC-framed.
///
/// # Errors
///
/// Returns the bare decode's [`ProtoError`] when neither layout
/// verifies.
pub fn decode_handshake(body: &[u8]) -> Result<(Frame, bool), ProtoError> {
    match decode_body(body) {
        Ok(frame) => Ok((frame, false)),
        Err(first) => {
            if let Ok(payload) = check_crc(body) {
                if let Ok(frame) = decode_body(payload) {
                    return Ok((frame, true));
                }
            }
            Err(first)
        }
    }
}

/// Writes one length-prefixed frame to `w` (no flush — callers batch
/// frames and flush at protocol boundaries).
///
/// # Errors
///
/// Propagates the stream's I/O error.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let mut body = Vec::new();
    encode_body(frame, &mut body);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)
}

/// Writes one CRC-framed frame (protocol ≥ 4): the length prefix
/// covers the body *and* the 4-byte CRC32C trailer computed over the
/// body, so the frame stays self-delimiting for readers that have not
/// switched modes yet.
///
/// # Errors
///
/// Propagates the stream's I/O error.
pub fn write_frame_crc<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let mut body = Vec::new();
    encode_body(frame, &mut body);
    let crc = crc32c(&body);
    w.write_all(&(body.len() as u32 + 4).to_le_bytes())?;
    w.write_all(&body)?;
    w.write_all(&crc.to_le_bytes())
}

/// [`write_frame`] or [`write_frame_crc`] depending on `crc` — the
/// session-version dispatch every serving path funnels through.
///
/// # Errors
///
/// Propagates the stream's I/O error.
pub fn write_frame_in<W: Write>(w: &mut W, frame: &Frame, crc: bool) -> io::Result<()> {
    if crc {
        write_frame_crc(w, frame)
    } else {
        write_frame(w, frame)
    }
}

/// Writes a `Completion` frame whose payload was already rendered with
/// [`completion_payload`] — the encode-once emission path of the
/// server's hot loop (the same bytes feed the session checksum and the
/// socket, with no second encoding and no per-frame allocation).
/// Byte-for-byte identical to
/// `write_frame(w, &Frame::Completion(..))`, which a unit test pins.
///
/// # Errors
///
/// Propagates the stream's I/O error.
pub fn write_completion_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(
        matches!(payload.len(), 40 | 48 | 56),
        "completion payloads are 40, 48 or 56 bytes, got {}",
        payload.len()
    );
    w.write_all(&(payload.len() as u32 + 1).to_le_bytes())?;
    w.write_all(&[tag::COMPLETION])?;
    w.write_all(payload)
}

/// The server's reusable batched-emission buffer: completions and
/// failures are encoded once into one growing byte buffer (no per-op
/// `Vec`), and [`EventBuffer::flush_to`] ships the whole run as a
/// single [`Frame::Events`] frame with one vectored write.
///
/// Each `push_*` returns the slice of the unit's *payload* bytes (the
/// kind byte excluded) so the caller can feed the session checksum with
/// exactly the bytes an unbatched `Completion` / `Failed` frame would
/// have carried — a unit test pins that the flushed frame is
/// byte-identical to `write_frame(w, &Frame::Events(..))`.
#[derive(Debug, Default)]
pub struct EventBuffer {
    /// Encoded units: kind byte + payload, back to back.
    buf: Vec<u8>,
    /// Units currently buffered.
    count: u32,
}

impl EventBuffer {
    /// An empty buffer; its allocation grows once and is then reused
    /// across flushes.
    #[must_use]
    pub fn new() -> Self {
        EventBuffer::default()
    }

    /// Units currently buffered.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True when nothing is buffered (a flush would be a no-op).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Encoded unit bytes currently buffered (frame header excluded).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// True when one more unit — even the widest — might not fit under
    /// [`MAX_FRAME_LEN`]; the caller flushes, then keeps pushing.
    #[must_use]
    pub fn is_full(&self) -> bool {
        // Frame body = type byte + u32 count + the units, plus the
        // 4-byte CRC trailer a v4 flush appends inside the length.
        5 + self.buf.len() + EVENT_UNIT_MAX + 4 > MAX_FRAME_LEN as usize
    }

    /// Appends a completion unit, returning its payload bytes (the
    /// slice the session checksum hashes).
    pub fn push_completion(&mut self, c: &WireCompletion) -> &[u8] {
        self.buf.push(EVENT_COMPLETION);
        let start = self.buf.len();
        completion_payload(c, &mut self.buf);
        self.count += 1;
        &self.buf[start..]
    }

    /// Appends a failure unit, returning its payload bytes (the slice
    /// the session checksum hashes).
    pub fn push_failure(&mut self, x: &WireFailure) -> &[u8] {
        self.buf.push(EVENT_FAILURE);
        let start = self.buf.len();
        failure_payload(x, &mut self.buf);
        self.count += 1;
        &self.buf[start..]
    }

    /// Appends an already-encoded unit — the journal replay path of a
    /// resumed session, re-emitting the exact payload bytes the
    /// original emission produced so the resumed stream is
    /// byte-identical to an uninterrupted one.
    pub fn push_raw(&mut self, kind: u8, payload: &[u8]) {
        self.buf.push(kind);
        self.buf.extend_from_slice(payload);
        self.count += 1;
    }

    /// Writes the buffered run as one [`Frame::Events`] frame (header
    /// and units in a single vectored write where the stream allows)
    /// and resets the buffer for reuse. Empty buffers write nothing.
    ///
    /// # Errors
    ///
    /// Propagates the stream's I/O error; a short write that makes no
    /// progress surfaces as [`io::ErrorKind::WriteZero`].
    pub fn flush_to<W: Write>(&mut self, w: &mut W) -> io::Result<()> {
        self.flush_frame(w, false)
    }

    /// [`EventBuffer::flush_to`] with the protocol ≥ 4 CRC32C trailer:
    /// the frame's length covers the units and the trailing CRC over
    /// `tag + count + units`, exactly as [`write_frame_crc`] would
    /// produce (a unit test pins the byte identity).
    ///
    /// # Errors
    ///
    /// Propagates the stream's I/O error; a short write that makes no
    /// progress surfaces as [`io::ErrorKind::WriteZero`].
    pub fn flush_to_crc<W: Write>(&mut self, w: &mut W) -> io::Result<()> {
        self.flush_frame(w, true)
    }

    fn flush_frame<W: Write>(&mut self, w: &mut W, crc: bool) -> io::Result<()> {
        if self.count == 0 {
            return Ok(());
        }
        let trailer_len = if crc { 4 } else { 0 };
        let mut header = [0u8; 9];
        header[0..4].copy_from_slice(&(self.buf.len() as u32 + 5 + trailer_len).to_le_bytes());
        header[4] = tag::EVENTS;
        header[5..9].copy_from_slice(&self.count.to_le_bytes());
        // The trailer hashes the frame *body* (tag + count + units),
        // not the length prefix — computed incrementally so the units
        // are never re-walked or copied.
        let trailer = if crc {
            (!crc32c_append(crc32c_append(!0, &header[4..9]), &self.buf)).to_le_bytes()
        } else {
            [0u8; 4]
        };
        let trailer = &trailer[..trailer_len as usize];
        // A write-all loop over the vectored [header, units, trailer]
        // triple: `write_vectored` may land anywhere, so resume from
        // the exact byte offset it reached.
        let total = header.len() + self.buf.len() + trailer.len();
        let mut written = 0usize;
        while written < total {
            let result = if written < header.len() {
                w.write_vectored(&[
                    IoSlice::new(&header[written..]),
                    IoSlice::new(&self.buf),
                    IoSlice::new(trailer),
                ])
            } else if written < header.len() + self.buf.len() {
                w.write_vectored(&[
                    IoSlice::new(&self.buf[written - header.len()..]),
                    IoSlice::new(trailer),
                ])
            } else {
                w.write(&trailer[written - header.len() - self.buf.len()..])
            };
            match result {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "failed to write the whole events frame",
                    ))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.count = 0;
        Ok(())
    }
}

/// Reads one length-prefixed frame from `r`, enforcing
/// [`MAX_FRAME_LEN`].
///
/// # Errors
///
/// Returns [`ProtoError::Io`] on stream failure (including a clean EOF
/// before the length prefix, surfaced as
/// [`io::ErrorKind::UnexpectedEof`]) and the matching decode error on a
/// malformed frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtoError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    if len == 0 {
        return Err(ProtoError::Empty);
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_body(&body)
}

/// [`read_frame`] for a CRC-framed (protocol ≥ 4) stream: verifies the
/// CRC32C trailer before decoding.
///
/// # Errors
///
/// As [`read_frame`], plus [`ProtoError::Crc`] on a trailer mismatch.
pub fn read_frame_crc<R: Read>(r: &mut R) -> Result<Frame, ProtoError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    if len == 0 {
        return Err(ProtoError::Empty);
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    check_crc(&body).and_then(decode_body)
}

/// An incremental, restartable frame decoder for streams with read
/// timeouts or non-blocking sockets.
///
/// [`read_frame`] blocks until a whole frame arrives, which prevents a
/// serving loop from noticing a shutdown request while a client is
/// idle. `FrameReader` instead accumulates partial bytes across calls:
/// [`FrameReader::poll`] returns `Ok(Some(frame))` when a frame
/// completes, `Ok(None)` when the stream would block or timed out
/// mid-wait (call again later — no bytes are lost), and an error on
/// stream failure or a malformed frame. The internal buffer is reused
/// across frames, and an oversized length prefix is rejected before any
/// allocation, exactly like [`read_frame`].
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_filled: usize,
    body: Vec<u8>,
    body_filled: usize,
    /// Body length once the header is complete.
    need: Option<usize>,
    /// When set, every body ends in a CRC32C trailer that is verified
    /// before decode (protocol ≥ 4 framing).
    crc: bool,
}

impl FrameReader {
    /// A reader with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Switches CRC framing on or off (protocol ≥ 4 sessions switch it
    /// on once the handshake pins the version). Takes effect at the
    /// next frame boundary.
    pub fn set_crc(&mut self, on: bool) {
        self.crc = on;
    }

    /// True when the reader verifies CRC32C trailers before decode.
    #[must_use]
    pub fn crc_enabled(&self) -> bool {
        self.crc
    }

    /// True while a frame is partially received (a teardown at this
    /// point loses client bytes).
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0 || self.need.is_some()
    }

    /// Reads from `r` until a frame completes, the stream would block,
    /// or an error occurs.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Io`] on stream failure (including EOF — a
    /// clean close at a frame boundary surfaces as
    /// [`io::ErrorKind::UnexpectedEof`] with [`FrameReader::mid_frame`]
    /// false) and the matching decode error on a malformed frame.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<Option<Frame>, ProtoError> {
        match self.poll_body(r)? {
            Some(need) => {
                let body = &self.body[..need];
                if self.crc {
                    check_crc(body).and_then(decode_body).map(Some)
                } else {
                    decode_body(body).map(Some)
                }
            }
            None => Ok(None),
        }
    }

    /// Like [`FrameReader::poll`], but for the *first* frame of a
    /// connection, whose framing is unknown until decoded: accepts both
    /// the bare and the CRC-framed layout (see [`decode_handshake`]),
    /// returns which one arrived, and arms [`FrameReader::set_crc`]
    /// accordingly for every subsequent poll.
    ///
    /// # Errors
    ///
    /// As [`FrameReader::poll`].
    pub fn poll_first<R: Read>(&mut self, r: &mut R) -> Result<Option<(Frame, bool)>, ProtoError> {
        match self.poll_body(r)? {
            Some(need) => {
                let (frame, crc) = decode_handshake(&self.body[..need])?;
                self.crc = crc;
                Ok(Some((frame, crc)))
            }
            None => Ok(None),
        }
    }

    /// Accumulates header and body bytes; `Some(len)` once a whole body
    /// of `len` bytes sits in `self.body`.
    fn poll_body<R: Read>(&mut self, r: &mut R) -> Result<Option<usize>, ProtoError> {
        if self.need.is_none() {
            match self.fill(r, true)? {
                Filled::Complete => {
                    let len = u32::from_le_bytes(self.header);
                    self.header_filled = 0;
                    if len > MAX_FRAME_LEN {
                        return Err(ProtoError::Oversized(len));
                    }
                    if len == 0 {
                        return Err(ProtoError::Empty);
                    }
                    self.need = Some(len as usize);
                    self.body.clear();
                    self.body.resize(len as usize, 0);
                    self.body_filled = 0;
                }
                Filled::WouldBlock => return Ok(None),
            }
        }
        match self.fill(r, false)? {
            Filled::Complete => {
                let need = self.need.take().expect("body phase has a length");
                self.body_filled = 0;
                Ok(Some(need))
            }
            Filled::WouldBlock => Ok(None),
        }
    }

    /// Fills the header (`head = true`) or body buffer as far as the
    /// stream allows.
    fn fill<R: Read>(&mut self, r: &mut R, head: bool) -> Result<Filled, ProtoError> {
        loop {
            let buf: &mut [u8] = if head {
                &mut self.header[self.header_filled..]
            } else {
                let need = self.need.expect("body phase has a length");
                &mut self.body[self.body_filled..need]
            };
            if buf.is_empty() {
                return Ok(Filled::Complete);
            }
            match r.read(buf) {
                Ok(0) => {
                    return Err(ProtoError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream closed mid-frame",
                    )))
                }
                Ok(n) => {
                    if head {
                        self.header_filled += n;
                    } else {
                        self.body_filled += n;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Filled::WouldBlock)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

enum Filled {
    Complete,
    WouldBlock,
}

/// FNV-1a 64-bit — the session checksum over completion payloads.
///
/// Offset basis `0xcbf2_9ce4_8422_2325`, prime `0x0000_0100_0000_01b3`;
/// fed with the 40-byte [`completion_payload`] of every completion frame
/// in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current digest.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        // The length prefix covers exactly the body.
        let len = u32::from_le_bytes(wire[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, wire.len() - 4);
        let mut reader = wire.as_slice();
        let decoded = read_frame(&mut reader).unwrap();
        assert!(reader.is_empty(), "frame consumed exactly");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn hello_round_trips() {
        round_trip(Frame::Hello(SessionParams::defaults()));
        round_trip(Frame::Hello(SessionParams {
            version: PROTOCOL_VERSION,
            shards: 4,
            module_mib: 64,
            max_outstanding: 1024,
            target_rows_per_s: 2_000_000,
            refresh: 0,
            compute_rows: 64,
            qos_weight: 7,
            tenants: 16,
            quota_ops: 4096,
        }));
    }

    #[test]
    fn hello_ack_round_trips() {
        // v5: the ack carries the QoS/tenancy tail and the session token.
        round_trip(Frame::HelloAck {
            params: SessionParams {
                version: PROTOCOL_VERSION,
                shards: 2,
                module_mib: 128,
                max_outstanding: 512,
                target_rows_per_s: 0,
                refresh: 1,
                compute_rows: 16,
                qos_weight: 3,
                tenants: 8,
                quota_ops: 512,
            },
            token: 0xfeed_face_0123_4567,
        });
        // v4: the 25-byte params block plus the token — byte-identical
        // to its pinned pre-v5 layout.
        round_trip(Frame::HelloAck {
            params: SessionParams {
                version: 4,
                shards: 2,
                module_mib: 128,
                max_outstanding: 512,
                target_rows_per_s: 0,
                refresh: 1,
                compute_rows: 16,
                qos_weight: 0,
                tenants: 0,
                quota_ops: 0,
            },
            token: 0xfeed_face_0123_4567,
        });
        // Below v4 the token is absent from the wire (and must be 0):
        // the 25-byte v2/v3 ack layout is unchanged.
        let v3 = SessionParams {
            version: 3,
            shards: 2,
            module_mib: 128,
            max_outstanding: 512,
            target_rows_per_s: 0,
            refresh: 1,
            compute_rows: 16,
            qos_weight: 0,
            tenants: 0,
            quota_ops: 0,
        };
        round_trip(Frame::HelloAck {
            params: v3,
            token: 0,
        });
        let mut body = Vec::new();
        encode_body(
            &Frame::HelloAck {
                params: v3,
                token: 0,
            },
            &mut body,
        );
        assert_eq!(body.len(), 26, "v3 ack layout: tag + 25-byte params");
        // A v4 ack truncated to the tokenless layout (or a v3 ack with
        // a trailing token) is a typed length error, not a misread.
        let mut v4body = Vec::new();
        encode_body(
            &Frame::HelloAck {
                params: SessionParams::defaults(),
                token: 7,
            },
            &mut v4body,
        );
        assert!(matches!(
            body_err(&v4body[..26]),
            ProtoError::BadLength { .. }
        ));
        body.extend_from_slice(&7u64.to_le_bytes());
        assert!(matches!(body_err(&body), ProtoError::BadLength { .. }));
    }

    #[test]
    fn resume_round_trips() {
        round_trip(Frame::Resume(ResumeRequest {
            version: PROTOCOL_VERSION,
            token: 0xdead_beef_cafe_f00d,
            events_received: 123_456,
        }));
        round_trip(Frame::ResumeAck(ResumeAck {
            params: SessionParams::defaults(),
            token: 0xdead_beef_cafe_f00d,
            next_seq: 4096,
            replay_events: 37,
            finished: 1,
        }));
    }

    #[test]
    fn crc32c_matches_the_castagnoli_reference_vectors() {
        // The canonical check value, plus RFC 3720-style edge vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn crc_framed_frames_round_trip_and_detect_corruption() {
        let frame = Frame::Batch(vec![CodicOp::read(0x40), CodicOp::write(0x80)]);
        let mut wire = Vec::new();
        write_frame_crc(&mut wire, &frame).unwrap();
        // The length prefix covers the body plus the 4-byte trailer.
        let len = u32::from_le_bytes(wire[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, wire.len() - 4);
        assert_eq!(read_frame_crc(&mut wire.as_slice()).unwrap(), frame);
        let mut frames = FrameReader::new();
        frames.set_crc(true);
        assert_eq!(frames.poll(&mut wire.as_slice()).unwrap(), Some(frame));
        // Any corrupted body byte is a typed Crc error, before decode.
        for pos in 4..wire.len() {
            let mut mutant = wire.clone();
            mutant[pos] ^= 0x10;
            let mut frames = FrameReader::new();
            frames.set_crc(true);
            assert!(matches!(
                frames.poll(&mut mutant.as_slice()),
                Err(ProtoError::Crc { .. })
            ));
            assert!(matches!(
                read_frame_crc(&mut mutant.as_slice()),
                Err(ProtoError::Crc { .. })
            ));
        }
    }

    #[test]
    fn event_buffer_crc_flush_matches_write_frame_crc_byte_for_byte() {
        let events = sample_events();
        let mut via_frame = Vec::new();
        write_frame_crc(&mut via_frame, &Frame::Events(events.clone())).unwrap();
        let mut buffer = EventBuffer::new();
        for event in &events {
            match event {
                SessionEvent::Completion(c) => buffer.push_completion(c),
                SessionEvent::Failure(x) => buffer.push_failure(x),
            };
        }
        let mut via_buffer = Vec::new();
        buffer.flush_to_crc(&mut via_buffer).unwrap();
        assert_eq!(via_buffer, via_frame);
        assert!(buffer.is_empty());
    }

    #[test]
    fn push_raw_reemits_journaled_units_byte_identically() {
        let events = sample_events();
        let mut original = EventBuffer::new();
        let mut journal: Vec<(u8, Vec<u8>)> = Vec::new();
        for event in &events {
            let (kind, payload) = match event {
                SessionEvent::Completion(c) => (0u8, original.push_completion(c)),
                SessionEvent::Failure(x) => (1u8, original.push_failure(x)),
            };
            journal.push((kind, payload.to_vec()));
        }
        let mut first = Vec::new();
        original.flush_to_crc(&mut first).unwrap();
        let mut replayed = EventBuffer::new();
        for (kind, payload) in &journal {
            replayed.push_raw(*kind, payload);
        }
        let mut second = Vec::new();
        replayed.flush_to_crc(&mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn handshake_decoding_accepts_both_framings() {
        for frame in [
            Frame::Hello(SessionParams::defaults()),
            Frame::Resume(ResumeRequest {
                version: PROTOCOL_VERSION,
                token: 42,
                events_received: 7,
            }),
        ] {
            let mut bare = Vec::new();
            encode_body(&frame, &mut bare);
            assert_eq!(decode_handshake(&bare).unwrap(), (frame.clone(), false));
            let crc = crc32c(&bare);
            let mut framed = bare.clone();
            framed.extend_from_slice(&crc.to_le_bytes());
            assert_eq!(decode_handshake(&framed).unwrap(), (frame, true));
            // A corrupted CRC-framed handshake never decodes.
            for pos in 0..framed.len() {
                let mut mutant = framed.clone();
                mutant[pos] ^= 0x01;
                assert!(decode_handshake(&mutant).is_err(), "flip at {pos} decoded");
            }
        }
        // poll_first arms the reader's CRC mode from what it saw.
        let hello = Frame::Hello(SessionParams::defaults());
        let mut wire = Vec::new();
        write_frame_crc(&mut wire, &hello).unwrap();
        write_frame_crc(&mut wire, &Frame::Flush).unwrap();
        let mut stream = wire.as_slice();
        let mut frames = FrameReader::new();
        assert_eq!(
            frames.poll_first(&mut stream).unwrap(),
            Some((hello.clone(), true))
        );
        assert!(frames.crc_enabled());
        assert_eq!(frames.poll(&mut stream).unwrap(), Some(Frame::Flush));
        // And bare framing (a v2/v3 client) leaves CRC mode off.
        let mut wire = Vec::new();
        write_frame(&mut wire, &hello).unwrap();
        write_frame(&mut wire, &Frame::Flush).unwrap();
        let mut stream = wire.as_slice();
        let mut frames = FrameReader::new();
        assert_eq!(
            frames.poll_first(&mut stream).unwrap(),
            Some((hello, false))
        );
        assert!(!frames.crc_enabled());
        assert_eq!(frames.poll(&mut stream).unwrap(), Some(Frame::Flush));
    }

    #[test]
    fn batch_round_trips_every_op_kind() {
        let mut ops = vec![
            CodicOp::read(0x40),
            CodicOp::write(u64::MAX),
            CodicOp::RowCloneZero { row_addr: 0x2000 },
            CodicOp::LisaCloneZero { row_addr: 0x4000 },
            CodicOp::RowInit {
                row_addr: 0x6000,
                ones: false,
            },
            CodicOp::RowInit {
                row_addr: 0x8000,
                ones: true,
            },
            CodicOp::MajAnd { row_addr: 0xA000 },
            CodicOp::MajOr { row_addr: 0xC000 },
            CodicOp::Not {
                src_addr: 0xE000,
                dst_addr: 0x1_0000,
            },
            CodicOp::RowCopy {
                src_addr: 0x1_2000,
                dst_addr: 0x1_4000,
            },
            CodicOp::RowFill {
                row_addr: 0x1_6000,
                pattern: 0xA5A5_A5A5_A5A5_A5A5,
            },
        ];
        for variant in VariantId::ALL {
            ops.push(CodicOp::command(variant, 0x8000));
        }
        round_trip(Frame::Batch(ops));
        round_trip(Frame::Batch(Vec::new()));
    }

    #[test]
    fn variable_length_batches_must_walk_to_the_exact_end() {
        // A batch whose count claims one more op than the units supply.
        let ops = vec![
            CodicOp::Not {
                src_addr: 0x2000,
                dst_addr: 0x4000,
            },
            CodicOp::read(0x40),
        ];
        let mut body = Vec::new();
        encode_body(&Frame::Batch(ops), &mut body);
        body[1] = 3; // count lies upward: the walk runs out of bytes
        assert!(matches!(body_err(&body), ProtoError::BadLength { .. }));
        body[1] = 1; // count lies downward: trailing bytes remain
        assert!(matches!(body_err(&body), ProtoError::BadLength { .. }));
    }

    #[test]
    fn flush_and_bye_round_trip() {
        round_trip(Frame::Flush);
        round_trip(Frame::Bye);
    }

    #[test]
    fn completion_round_trips_with_exact_energy_bits() {
        round_trip(Frame::Completion(WireCompletion {
            seq: u64::MAX - 1,
            shard: 3,
            op: CodicOp::command(VariantId::Sig, 0x1_0000),
            finish_cycle: 123_456_789,
            busy_cycles: 39,
            activations: 2,
            energy_nj: 17.296_452_19,
            fingerprint: 0,
        }));
    }

    #[test]
    fn compute_completions_carry_their_fingerprint() {
        // 9-byte compute op: 48-byte payload with a trailing fingerprint.
        let maj = WireCompletion {
            seq: 9,
            shard: 2,
            op: CodicOp::MajAnd { row_addr: 0x2_0000 },
            finish_cycle: 4242,
            busy_cycles: 55,
            activations: 3,
            energy_nj: 21.5,
            fingerprint: 0xfeed_face_dead_beef,
        };
        let mut payload = Vec::new();
        completion_payload(&maj, &mut payload);
        assert_eq!(payload.len(), 48);
        round_trip(Frame::Completion(maj));
        // 17-byte compute op: 56-byte payload.
        let not = WireCompletion {
            op: CodicOp::Not {
                src_addr: 0x2_0000,
                dst_addr: 0x2_2000,
            },
            ..maj
        };
        let mut payload = Vec::new();
        completion_payload(&not, &mut payload);
        assert_eq!(payload.len(), 56);
        round_trip(Frame::Completion(not));
        // Classic ops stay byte-identical 40-byte v1 payloads: the
        // pinned session checksums of fault-free replays are unchanged.
        let mut payload = Vec::new();
        completion_payload(
            &WireCompletion {
                op: CodicOp::read(0x40),
                fingerprint: 0,
                ..maj
            },
            &mut payload,
        );
        assert_eq!(payload.len(), 40);
    }

    #[test]
    fn failures_of_two_address_ops_round_trip() {
        let failure = WireFailure {
            seq: 11,
            shard: 1,
            op: CodicOp::RowCopy {
                src_addr: 0x2_0000,
                dst_addr: 0x2_4000,
            },
            at_cycle: 88_888,
            cause: FaultCause::Misfire,
            attempts: 2,
        };
        let mut payload = Vec::new();
        failure_payload(&failure, &mut payload);
        assert_eq!(payload.len(), 37, "17-byte unit widens the payload by 8");
        round_trip(Frame::Failed(failure));
    }

    #[test]
    fn raw_completion_emission_matches_write_frame_byte_for_byte() {
        let completion = WireCompletion {
            seq: 7,
            shard: 1,
            op: CodicOp::LisaCloneZero { row_addr: 0x6000 },
            finish_cycle: 424_242,
            busy_cycles: 94,
            activations: 2,
            energy_nj: 34.5,
            fingerprint: 0,
        };
        let mut via_frame = Vec::new();
        write_frame(&mut via_frame, &Frame::Completion(completion)).unwrap();
        let mut payload = Vec::new();
        completion_payload(&completion, &mut payload);
        let mut via_raw = Vec::new();
        write_completion_frame(&mut via_raw, &payload).unwrap();
        assert_eq!(via_raw, via_frame);
    }

    #[test]
    fn batched_round_trips() {
        round_trip(Frame::Batched(BatchAck {
            seq_base: 4096,
            accepted: 1024,
            emitted: 1000,
            outstanding: 24,
        }));
    }

    #[test]
    fn flushed_round_trips() {
        round_trip(Frame::Flushed(FlushAck {
            emitted: 99,
            now_max: 1_000_000,
        }));
    }

    #[test]
    fn summary_round_trips() {
        round_trip(Frame::Summary(Summary {
            ops: 100_000,
            row_ops: 60_000,
            failed: 137,
            max_finish_cycle: 9_999_999,
            total_energy_nj: 1.730_442e6,
            checksum: 0xdead_beef_cafe_f00d,
        }));
    }

    #[test]
    fn failed_round_trips_every_cause() {
        for (cause, attempts) in [
            (FaultCause::Misfire, 3),
            (FaultCause::ClockStuck, 1),
            (FaultCause::Quarantined, 1),
        ] {
            round_trip(Frame::Failed(WireFailure {
                seq: 42_000,
                shard: 2,
                op: CodicOp::command(VariantId::DetZero, 0x8000),
                at_cycle: 77_777,
                cause,
                attempts,
            }));
        }
        // An unknown cause byte is a typed decode error.
        let failure = WireFailure {
            seq: 1,
            shard: 0,
            op: CodicOp::read(0),
            at_cycle: 9,
            cause: FaultCause::Misfire,
            attempts: 1,
        };
        let mut body = Vec::new();
        encode_body(&Frame::Failed(failure), &mut body);
        body[28] = 0xee; // the cause byte (1 tag + 27 payload bytes before it)
        assert!(matches!(
            decode_body(&body),
            Err(ProtoError::UnknownFaultCause(0xee))
        ));
    }

    /// A representative mixed run: classic and compute completions (9-
    /// and 17-byte ops, with fingerprints) interleaved with failures.
    fn sample_events() -> Vec<SessionEvent> {
        vec![
            SessionEvent::Completion(WireCompletion {
                seq: 0,
                shard: 1,
                op: CodicOp::read(0x40),
                finish_cycle: 100,
                busy_cycles: 24,
                activations: 1,
                energy_nj: 3.25,
                fingerprint: 0,
            }),
            SessionEvent::Completion(WireCompletion {
                seq: 1,
                shard: 0,
                op: CodicOp::MajAnd { row_addr: 0x2_0000 },
                finish_cycle: 140,
                busy_cycles: 55,
                activations: 3,
                energy_nj: 21.5,
                fingerprint: 0xfeed_face_dead_beef,
            }),
            SessionEvent::Failure(WireFailure {
                seq: 2,
                shard: 1,
                op: CodicOp::RowCopy {
                    src_addr: 0x2_0000,
                    dst_addr: 0x2_4000,
                },
                at_cycle: 150,
                cause: FaultCause::Misfire,
                attempts: 2,
            }),
            SessionEvent::Completion(WireCompletion {
                seq: 3,
                shard: 0,
                op: CodicOp::RowFill {
                    row_addr: 0x2_2000,
                    pattern: 0xA5A5_A5A5_A5A5_A5A5,
                },
                finish_cycle: 190,
                busy_cycles: 61,
                activations: 4,
                energy_nj: 27.75,
                fingerprint: 0x0123_4567_89ab_cdef,
            }),
            SessionEvent::Failure(WireFailure {
                seq: 4,
                shard: 0,
                op: CodicOp::command(VariantId::DetZero, 0x8000),
                at_cycle: 200,
                cause: FaultCause::Quarantined,
                attempts: 1,
            }),
        ]
    }

    #[test]
    fn events_round_trip_mixed_runs() {
        round_trip(Frame::Events(sample_events()));
        round_trip(Frame::Events(Vec::new()));
    }

    #[test]
    fn event_buffer_flush_matches_write_frame_byte_for_byte() {
        let events = sample_events();
        let mut via_frame = Vec::new();
        write_frame(&mut via_frame, &Frame::Events(events.clone())).unwrap();
        let mut buffer = EventBuffer::new();
        let mut hashed = Fnv64::new();
        let mut reference = Fnv64::new();
        for event in &events {
            // The returned slice is exactly what an unbatched frame's
            // payload would have been, so the session checksum is
            // framing-independent.
            let mut standalone = Vec::new();
            let slice = match event {
                SessionEvent::Completion(c) => {
                    completion_payload(c, &mut standalone);
                    buffer.push_completion(c)
                }
                SessionEvent::Failure(x) => {
                    failure_payload(x, &mut standalone);
                    buffer.push_failure(x)
                }
            };
            assert_eq!(slice, standalone.as_slice());
            hashed.update(slice);
            reference.update(&standalone);
        }
        assert_eq!(hashed.value(), reference.value());
        assert_eq!(buffer.len(), events.len() as u32);
        let mut via_buffer = Vec::new();
        buffer.flush_to(&mut via_buffer).unwrap();
        assert_eq!(via_buffer, via_frame);
        // The buffer resets for reuse, and an empty flush writes nothing.
        assert!(buffer.is_empty());
        let mut empty = Vec::new();
        buffer.flush_to(&mut empty).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn event_buffer_flush_survives_one_byte_writes() {
        // A stream that accepts one byte per call (with interruptions)
        // exercises the vectored write-all resume path.
        struct OneByte {
            bytes: Vec<u8>,
            interrupted: bool,
        }
        impl io::Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if !self.interrupted {
                    self.interrupted = true;
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "again"));
                }
                self.interrupted = false;
                self.bytes.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let events = sample_events();
        let mut via_frame = Vec::new();
        write_frame(&mut via_frame, &Frame::Events(events.clone())).unwrap();
        let mut buffer = EventBuffer::new();
        for event in &events {
            match event {
                SessionEvent::Completion(c) => buffer.push_completion(c),
                SessionEvent::Failure(x) => buffer.push_failure(x),
            };
        }
        let mut stream = OneByte {
            bytes: Vec::new(),
            interrupted: false,
        };
        buffer.flush_to(&mut stream).unwrap();
        assert_eq!(stream.bytes, via_frame);
    }

    #[test]
    fn event_buffer_full_frames_stay_under_the_cap() {
        let widest = WireCompletion {
            seq: 0,
            shard: 0,
            op: CodicOp::Not {
                src_addr: 0x2_0000,
                dst_addr: 0x2_2000,
            },
            finish_cycle: 1,
            busy_cycles: 1,
            activations: 1,
            energy_nj: 1.0,
            fingerprint: 1,
        };
        let mut buffer = EventBuffer::new();
        while !buffer.is_full() {
            buffer.push_completion(&widest);
        }
        let mut wire = Vec::new();
        buffer.flush_to(&mut wire).unwrap();
        let len = u32::from_le_bytes(wire[0..4].try_into().unwrap());
        assert!(len <= MAX_FRAME_LEN, "full buffer still fits one frame");
        // And the giant frame decodes back to the same run.
        let mut reader = wire.as_slice();
        match read_frame(&mut reader).unwrap() {
            Frame::Events(events) => {
                assert!(events.len() > 70_000, "the cap admits a large run");
                assert!(events
                    .iter()
                    .all(|e| *e == SessionEvent::Completion(widest)));
            }
            other => panic!("expected an events frame, got {other:?}"),
        }
    }

    #[test]
    fn hostile_event_counts_are_rejected_before_allocation() {
        // count = u32::MAX over a 34-byte payload: the pre-check fails
        // long before `Vec::with_capacity` could see the count.
        let mut body = vec![tag::EVENTS];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.extend_from_slice(&[0u8; 30]);
        assert!(matches!(body_err(&body), ProtoError::BadLength { .. }));
        // An unknown unit kind is a typed error.
        let mut body = Vec::new();
        encode_body(&Frame::Events(sample_events()), &mut body);
        body[5] = 7; // first unit's kind byte
        assert!(matches!(body_err(&body), ProtoError::UnknownEventKind(7)));
        // The walk must land exactly on the payload's end.
        let mut body = Vec::new();
        encode_body(&Frame::Events(sample_events()), &mut body);
        body.push(0); // trailing garbage after the last unit
        assert!(matches!(body_err(&body), ProtoError::BadLength { .. }));
        // A count lying downward leaves units unconsumed.
        let mut body = Vec::new();
        encode_body(&Frame::Events(sample_events()), &mut body);
        body[1] -= 1;
        assert!(matches!(body_err(&body), ProtoError::BadLength { .. }));
    }

    #[test]
    fn frame_reader_reassembles_frames_from_arbitrary_chunks() {
        // A stream of three frames, delivered one byte per poll through
        // a reader that reports WouldBlock between bytes.
        struct Trickle {
            bytes: Vec<u8>,
            pos: usize,
            starved: bool,
        }
        impl io::Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.starved {
                    self.starved = false;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
                }
                if self.pos == self.bytes.len() {
                    return Ok(0);
                }
                self.starved = true;
                buf[0] = self.bytes[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let frames = [
            Frame::Hello(SessionParams::defaults()),
            Frame::Batch(vec![CodicOp::read(0x40), CodicOp::write(0x80)]),
            Frame::Bye,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut stream = Trickle {
            bytes: wire,
            pos: 0,
            starved: false,
        };
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        loop {
            match reader.poll(&mut stream) {
                Ok(Some(frame)) => decoded.push(frame),
                Ok(None) => continue, // starved mid-frame; state is kept
                Err(ProtoError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(decoded, frames);
        assert!(!reader.mid_frame(), "EOF landed on a frame boundary");
        // Oversized prefixes are rejected before allocation here too.
        let mut wire = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        wire.push(0x03);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.poll(&mut wire.as_slice()),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn error_round_trips_every_code() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Policy,
            ErrorCode::Version,
            ErrorCode::Internal,
            ErrorCode::Unavailable,
        ] {
            round_trip(Frame::Error {
                code,
                detail: format!("{code:?}: address 0x1234 outside 0x0..0x1000"),
            });
        }
        round_trip(Frame::Error {
            code: ErrorCode::Internal,
            detail: String::new(),
        });
    }

    #[test]
    fn malformed_frames_are_rejected_not_misread() {
        // Unknown frame tag.
        assert!(matches!(
            decode_body(&[0x7f]),
            Err(ProtoError::UnknownFrame(0x7f))
        ));
        // Unknown op code inside a batch.
        let mut body = vec![0x02, 1, 0, 0, 0, 0xee];
        body.extend_from_slice(&[0u8; 8]);
        assert!(matches!(body_err(&body), ProtoError::UnknownOp(0xee)));
        // Truncated batch (count says 2, one unit present).
        let mut body = vec![0x02, 2, 0, 0, 0];
        body.extend_from_slice(&[0u8; 9]);
        assert!(matches!(body_err(&body), ProtoError::BadLength { .. }));
        // Payload on a payload-less frame.
        assert!(matches!(body_err(&[0x03, 1]), ProtoError::BadLength { .. }));
        // Oversized length prefix is rejected before allocation.
        let mut wire = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        wire.push(0x03);
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::Oversized(_))
        ));
        // EOF mid-frame surfaces as an I/O error.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Flush).unwrap();
        wire.pop();
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::Io(_))
        ));
    }

    fn body_err(body: &[u8]) -> ProtoError {
        decode_body(body).expect_err("malformed body must not decode")
    }

    #[test]
    fn checksum_is_the_documented_fnv1a() {
        // Pinned reference values of FNV-1a 64.
        let mut h = Fnv64::new();
        assert_eq!(h.value(), 0xcbf2_9ce4_8422_2325, "offset basis");
        h.update(b"a");
        assert_eq!(h.value(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"foobar");
        assert_eq!(h.value(), 0x8594_4171_f739_67e8);
        // Incremental and one-shot hashing agree.
        let mut parts = Fnv64::new();
        parts.update(b"foo");
        parts.update(b"bar");
        assert_eq!(parts.value(), h.value());
    }
}
