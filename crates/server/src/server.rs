//! The replay server: Unix-socket sessions served over a sharded
//! [`DevicePool`].
//!
//! Each connection is one independent session with its own pool (its own
//! shard clocks, mode registers, and policy state), served on its own
//! thread. The per-session serving loop is [`ReplayEngine`]:
//!
//! 1. a decoded [`Frame::Batch`] is submitted
//!    through [`DevicePool::submit_all_async`] (all-or-nothing policy:
//!    a rejected batch turns into one `Error` frame and touches nothing);
//! 2. backpressure: while [`DevicePool::outstanding`] exceeds the
//!    session's `max_outstanding`, the engine relieves pressure with
//!    [`DevicePool::step`] (one event per busy shard), never by blocking
//!    the socket;
//! 3. resolved [`OpFuture`]s are drained non-blockingly
//!    ([`OpFuture::try_take`]) and streamed back as typed `Completion`
//!    frames in completion order (ascending finish cycle at each drain
//!    point, ties broken by submission sequence).
//!
//! Determinism contract: the engine's DRAM timeline is a pure function
//! of the submission sequence (batch boundaries included). With
//! `max_outstanding` at or above the pool's natural in-flight bound
//! (three 64-deep queues plus in-flight commands per shard), the
//! backpressure loop never fires and the served timeline is
//! *instruction-for-instruction* the direct
//! [`DevicePool::submit_all_async`] + [`DevicePool::drive`] run — the
//! bit-identity the end-to-end tests pin. Below that bound it stays
//! deterministic, but clocks advance earlier. The replay-rate governor
//! only ever sleeps the host thread, so it cannot perturb cycles.
//!
//! Two orthogonal serving options preserve that contract bit for bit:
//! [`ServerConfig::workers`] runs the engine over pipelined
//! [`ShardWorkers`] (one thread per shard behind SPSC rings, drained at
//! the same loop points), and protocol-v3 sessions receive their
//! completions packed into batched `Events` frames whose *payload*
//! bytes — the only bytes the session checksum hashes — are identical
//! to the per-op frames a v2 session gets.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use codic_core::device::DeviceConfig;
use codic_core::error::CodicError;
use codic_core::executor::OpFuture;
use codic_core::fault::{FaultPlan, HealthPolicy, RetryPolicy};
use codic_core::ops::CodicOp;
use codic_core::pool::{DevicePool, ShardHealth};
use codic_core::worker::{DrainedOp, ShardWorkers};
use codic_dram::{DramGeometry, TimingParams};

use crate::governor::RateGovernor;
use crate::proto::{
    self, write_frame, BatchAck, ErrorCode, EventBuffer, FlushAck, Fnv64, Frame, FrameReader,
    ProtoError, SessionParams, Summary, WireCompletion, WireFailure, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};

/// Server-side session defaults and caps.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Default pool shards per session (a `Hello` may override).
    pub shards: usize,
    /// Default module capacity per session, in MiB.
    pub module_mib: u64,
    /// Default and maximum outstanding-operation bound per session.
    pub max_outstanding: usize,
    /// Server-wide replay-rate cap in rows/s (0 = uncapped); a session's
    /// own target can only lower it.
    pub target_rows_per_s: u64,
    /// Default refresh-engine state.
    pub refresh: bool,
    /// Seeded fault-injection plan applied to every session's pool
    /// (`None` = no injection — the production default).
    pub fault: Option<FaultPlan>,
    /// Retry policy for misfired operations.
    pub retry: RetryPolicy,
    /// When sessions quarantine their shards.
    pub health: HealthPolicy,
    /// Default bulk-bitwise compute region, in rows at the top of the
    /// module (0 = compute disabled; a `Hello` may request its own).
    pub compute_rows: u64,
    /// Serve sessions through pipelined [`ShardWorkers`] (one thread
    /// per shard, fed by SPSC rings) instead of the inline
    /// [`DevicePool`]. The completion stream is bit-identical either
    /// way; worker mode overlaps decode, engine stepping, and encoding
    /// across cores.
    pub workers: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            module_mib: 64,
            // At or above the pool's natural in-flight bound for the
            // default 4 shards, so paced replay is instruction-for-
            // instruction the direct submit_all_async + drive run.
            max_outstanding: 1024,
            target_rows_per_s: 0,
            refresh: false,
            fault: None,
            retry: RetryPolicy::default(),
            health: HealthPolicy::default(),
            compute_rows: 0,
            workers: false,
        }
    }
}

impl ServerConfig {
    /// Resolves a client `Hello` against the server's defaults and caps
    /// into the effective session parameters of the `HelloAck`.
    #[must_use]
    pub fn negotiate(&self, hello: &SessionParams) -> SessionParams {
        let shards = match hello.shards {
            0 => self.shards,
            n => (n as usize).min(64),
        };
        let module_mib = match hello.module_mib {
            0 => self.module_mib,
            // Keep the per-session footprint bounded and row-divisible.
            n => u64::from(n).clamp(1, 4096).next_power_of_two(),
        };
        let max_outstanding = match hello.max_outstanding {
            0 => self.max_outstanding,
            n => (n as usize).min(self.max_outstanding.max(1)),
        };
        let target_rows_per_s = match (self.target_rows_per_s, hello.target_rows_per_s) {
            (0, t) => t,
            (s, 0) => s,
            (s, t) => s.min(t),
        };
        let refresh = match hello.refresh {
            0 => false,
            1 => true,
            _ => self.refresh,
        };
        // The compute region can never exceed the module (the HelloAck
        // reports the honest effective row count).
        let module_rows = DramGeometry::module_mib(module_mib).total_rows();
        let compute_rows = match hello.compute_rows {
            0 => self.compute_rows,
            n => u64::from(n),
        }
        .min(module_rows);
        SessionParams {
            // The session runs the *client's* version (already validated
            // against the supported range by the handshake); the ack
            // echoes it so a v2 client interoperates unchanged.
            version: hello.version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION),
            shards: shards as u16,
            module_mib: module_mib as u32,
            max_outstanding: max_outstanding as u32,
            target_rows_per_s,
            refresh: u8::from(refresh),
            compute_rows: compute_rows as u32,
        }
    }

    /// The device configuration a session with `params` runs on.
    /// The protocol pins the timing to DDR3-1600 (11-11-11).
    #[must_use]
    pub fn device_config(params: &SessionParams) -> DeviceConfig {
        DeviceConfig::new(
            DramGeometry::module_mib(u64::from(params.module_mib)),
            TimingParams::ddr3_1600_11(),
        )
        .with_refresh(params.refresh == 1)
        .with_compute_rows(u64::from(params.compute_rows))
    }
}

/// One finished operation with its session metadata — the in-process
/// twin of the wire's `Completion` frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayCompletion {
    /// Zero-based submission sequence number within the session.
    pub seq: u64,
    /// The shard that served the operation.
    pub shard: u16,
    /// The typed completion from the device layer.
    pub completion: codic_core::device::OpCompletion,
}

impl ReplayCompletion {
    /// The wire form of this completion.
    #[must_use]
    pub fn to_wire(&self) -> WireCompletion {
        WireCompletion {
            seq: self.seq,
            shard: self.shard,
            op: self.completion.op,
            finish_cycle: self.completion.finish_cycle,
            busy_cycles: self.completion.cost.busy_cycles,
            activations: self.completion.cost.activations,
            energy_nj: self.completion.cost.energy_nj,
            fingerprint: self.completion.fingerprint,
        }
    }

    /// The wire form of this completion's failure, when it failed.
    #[must_use]
    pub fn to_wire_failure(&self) -> Option<WireFailure> {
        self.completion.outcome.cause().map(|cause| WireFailure {
            seq: self.seq,
            shard: self.shard,
            op: self.completion.op,
            at_cycle: self.completion.finish_cycle,
            cause,
            attempts: self.completion.attempts,
        })
    }
}

/// The engine's execution substrate: the inline pool, or one worker
/// thread per shard behind SPSC rings. Both run the identical
/// submission discipline; the worker determinism tests pin the
/// bit-identity.
enum EngineCore {
    Inline(DevicePool),
    Workers(ShardWorkers),
}

impl fmt::Debug for EngineCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineCore::Inline(pool) => f.debug_tuple("Inline").field(pool).finish(),
            EngineCore::Workers(w) => write!(f, "Workers({} shards)", w.shards()),
        }
    }
}

/// The deterministic per-session serving core: typed batches in,
/// completion-ordered [`ReplayCompletion`]s out.
///
/// This is exactly the discipline the wire server runs, factored out so
/// the client's `--verify` mode and the end-to-end tests can replay it
/// in process and demand bit-identical results.
#[derive(Debug)]
pub struct ReplayEngine {
    core: EngineCore,
    /// In-flight futures — inline mode only (workers track their own).
    pending: Vec<(u64, u16, OpFuture)>,
    scratch: Vec<(u64, u16, OpFuture)>,
    next_seq: u64,
    max_outstanding: usize,
}

impl ReplayEngine {
    /// An engine over a fresh pool per `params` (see
    /// [`ServerConfig::device_config`]), with no fault injection — the
    /// reference the client's `--verify` mode replays against.
    #[must_use]
    pub fn new(params: &SessionParams) -> Self {
        ReplayEngine::with_faults(
            params,
            None,
            RetryPolicy::default(),
            HealthPolicy::default(),
        )
    }

    /// An engine whose pool carries a fault-injection plan, retry
    /// policy, and health policy. `fault = None` makes this identical to
    /// [`ReplayEngine::new`].
    #[must_use]
    pub fn with_faults(
        params: &SessionParams,
        fault: Option<FaultPlan>,
        retry: RetryPolicy,
        health: HealthPolicy,
    ) -> Self {
        ReplayEngine::with_options(params, fault, retry, health, false)
    }

    /// The full constructor: `pipelined = true` serves the session
    /// through [`ShardWorkers`] — one thread per shard, fed by SPSC
    /// rings, so decode, submission, engine stepping, and completion
    /// encoding overlap — with a completion stream bit-identical to the
    /// inline pool (the tests here and the worker determinism proptests
    /// pin it).
    #[must_use]
    pub fn with_options(
        params: &SessionParams,
        fault: Option<FaultPlan>,
        retry: RetryPolicy,
        health: HealthPolicy,
        pipelined: bool,
    ) -> Self {
        let mut config = ServerConfig::device_config(params).with_retry(retry);
        if let Some(plan) = fault {
            config = config.with_faults(plan);
        }
        let shards = (params.shards as usize).max(1);
        let core = if pipelined {
            let mut workers = ShardWorkers::launch(shards, &config);
            workers.set_health_policy(health);
            EngineCore::Workers(workers)
        } else {
            let mut pool = DevicePool::new(shards, &config);
            pool.set_health_policy(health);
            EngineCore::Inline(pool)
        };
        ReplayEngine {
            core,
            pending: Vec::new(),
            scratch: Vec::new(),
            next_seq: 0,
            max_outstanding: (params.max_outstanding as usize).max(1),
        }
    }

    /// Submits one batch and returns the completions that drained at
    /// this boundary, in completion order.
    ///
    /// # Errors
    ///
    /// Returns the policy error; the batch was all-or-nothing rejected
    /// and the engine state is untouched (no sequence numbers consumed).
    pub fn submit_batch(&mut self, ops: &[CodicOp]) -> Result<Vec<ReplayCompletion>, CodicError> {
        match &mut self.core {
            EngineCore::Inline(pool) => {
                // The routed variant reports where each op actually
                // landed: a shard wedging mid-batch is quarantined
                // inside the pool and its traffic re-routed, and the
                // completion must carry the shard that really served it.
                let routed = pool.submit_all_async_routed(ops)?;
                for (shard, future) in routed {
                    self.pending.push((self.next_seq, shard as u16, future));
                    self.next_seq += 1;
                }
                // Backpressure: relieve the in-flight window one engine
                // event at a time; never over-drive (drive() would run
                // all the way to idle and distort the timeline for
                // nothing). step() reports no progress once every busy
                // shard is stuck, so a wedged clock cannot spin this
                // loop.
                while pool.outstanding() > self.max_outstanding {
                    if !pool.step() {
                        break;
                    }
                }
                // The batch boundary doubles as the op-deadline check: a
                // shard that wedged during this batch is quarantined
                // here, its stranded ops delivered as typed failures in
                // this very drain. With fault injection disabled this
                // never fires.
                pool.check_health();
                Ok(self.drain_ready())
            }
            EngineCore::Workers(workers) => {
                // All-or-nothing pre-flight happens coordinator-side
                // before anything reaches a ring, so a rejected batch
                // consumes no sequence numbers, same as inline.
                workers.submit_batch(self.next_seq, ops)?;
                self.next_seq += ops.len() as u64;
                // First barrier: collect what resolved while this batch
                // was being decoded and refresh the statuses the
                // backpressure loop gates on. Drains never advance a
                // device, so splitting the drain around the loop yields
                // exactly the inline path's single-drain set.
                let mut drained = workers.drain_ready();
                while workers.outstanding() > self.max_outstanding {
                    if !workers.step_all() {
                        break;
                    }
                }
                workers.check_health();
                drained.extend(workers.drain_ready());
                Ok(into_completions(drained))
            }
        }
    }

    /// Drives every shard to idle and returns everything still pending,
    /// in completion order. A shard that cannot reach idle (stuck clock)
    /// is quarantined at this boundary and its stranded operations are
    /// delivered as typed failures, so a flush always resolves every
    /// pending operation one way or the other.
    pub fn flush(&mut self) -> Vec<ReplayCompletion> {
        match &mut self.core {
            EngineCore::Inline(pool) => {
                pool.drive();
                pool.check_health();
            }
            EngineCore::Workers(workers) => {
                let mut drained = workers.flush();
                workers.check_health();
                drained.extend(workers.drain_ready());
                return into_completions(drained);
            }
        }
        self.drain_ready()
    }

    /// Per-shard health of the serving pool.
    #[must_use]
    pub fn health(&self) -> &[ShardHealth] {
        match &self.core {
            EngineCore::Inline(pool) => pool.health(),
            EngineCore::Workers(workers) => workers.health(),
        }
    }

    /// Operations submitted but not yet completed (the backpressure
    /// signal; bounded by the session's `max_outstanding` between
    /// batches). In worker mode this is the count as of the last
    /// barrier — exact at every point the serving loop reads it.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        match &self.core {
            EngineCore::Inline(pool) => pool.outstanding(),
            EngineCore::Workers(workers) => workers.outstanding(),
        }
    }

    /// The slowest shard's current cycle.
    #[must_use]
    pub fn now_max(&self) -> u64 {
        match &self.core {
            EngineCore::Inline(pool) => (0..pool.shards())
                .map(|s| pool.device(s).now())
                .max()
                .unwrap_or(0),
            EngineCore::Workers(workers) => workers.now_max(),
        }
    }

    /// Sequence number the next submitted operation will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Moves every resolved future out of the pending set, sorted into
    /// completion order: ascending finish cycle, ties broken by
    /// submission sequence. (Per shard this is exactly resolution order;
    /// across shards the tie-break makes the interleaving deterministic.)
    fn drain_ready(&mut self) -> Vec<ReplayCompletion> {
        let mut ready = Vec::new();
        self.scratch.clear();
        for (seq, shard, mut future) in self.pending.drain(..) {
            match future.try_take() {
                Some(completion) => ready.push(ReplayCompletion {
                    seq,
                    shard,
                    completion,
                }),
                None => self.scratch.push((seq, shard, future)),
            }
        }
        std::mem::swap(&mut self.pending, &mut self.scratch);
        ready.sort_by_key(|r| (r.completion.finish_cycle, r.seq));
        ready
    }
}

/// Sorts worker-drained completions into the same completion order the
/// inline path emits: ascending finish cycle, ties broken by submission
/// sequence — a total order (seq is unique), so the emitted stream is
/// independent of which worker thread resolved what first.
fn into_completions(mut drained: Vec<DrainedOp>) -> Vec<ReplayCompletion> {
    drained.sort_by_key(|d| (d.completion.finish_cycle, d.seq));
    drained
        .into_iter()
        .map(|d| ReplayCompletion {
            seq: d.seq,
            shard: d.shard,
            completion: d.completion,
        })
        .collect()
}

/// Why a session ended.
#[derive(Debug)]
pub enum SessionEnd {
    /// The client said `Bye`; the summary was sent.
    Bye,
    /// The client hung up without a `Bye`.
    Disconnected,
    /// The session was aborted after a malformed frame (an `Error`
    /// frame was sent when possible).
    Protocol(ProtoError),
    /// The session was rejected before or during the handshake, or a
    /// well-formed frame arrived out of protocol order; the reason was
    /// also sent to the client as an `Error` frame.
    Rejected(String),
    /// The server shut down gracefully: in-flight operations were
    /// drained (or failed with a typed cause) and an honest `Summary`
    /// was sent before the connection closed.
    Shutdown,
    /// The socket failed.
    Io(io::Error),
}

/// Serves one established session over any byte stream (the Unix-socket
/// path wraps this; tests may drive it over an in-memory pipe).
///
/// # Errors
///
/// Returns the socket failure that ended the session, if any; protocol
/// violations and client disconnects are reported in [`SessionEnd`].
pub fn serve_session<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    config: &ServerConfig,
) -> io::Result<SessionEnd> {
    serve_session_until(reader, writer, config, &AtomicBool::new(false))
}

/// Pulls the next frame, surfacing a shutdown request as `Ok(None)`.
/// A stream without a read timeout simply blocks in `poll` until a
/// frame arrives, so shutdown is only observed between frames there;
/// the Unix-socket path sets a read timeout to bound the latency.
fn next_frame<R: Read>(
    reader: &mut R,
    frames: &mut FrameReader,
    shutdown: &AtomicBool,
) -> Result<Option<Frame>, ProtoError> {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(None);
        }
        if let Some(frame) = frames.poll(reader)? {
            return Ok(Some(frame));
        }
    }
}

/// [`serve_session`] with a shutdown flag: when `shutdown` becomes true
/// the session stops reading, drains every in-flight operation (failing
/// what cannot finish, with typed causes), sends the honest `Summary`
/// of everything actually delivered, and ends with
/// [`SessionEnd::Shutdown`].
///
/// # Errors
///
/// Returns the socket failure that ended the session, if any.
pub fn serve_session_until<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> io::Result<SessionEnd> {
    let mut frames = FrameReader::new();
    // The session opens with a Hello.
    let hello = match next_frame(reader, &mut frames, shutdown) {
        Ok(Some(Frame::Hello(params))) => params,
        Ok(Some(other)) => {
            let reason = format!("expected Hello, got {}", frame_name(&other));
            send_error(writer, ErrorCode::Malformed, &reason)?;
            return Ok(SessionEnd::Rejected(reason));
        }
        Ok(None) => {
            send_error(writer, ErrorCode::Unavailable, "server is shutting down")?;
            return Ok(SessionEnd::Shutdown);
        }
        Err(ProtoError::Io(e)) => return io_end(e),
        Err(e) => {
            send_error(writer, ErrorCode::Malformed, &e.to_string())?;
            return Ok(SessionEnd::Protocol(e));
        }
    };
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&hello.version) {
        let reason = format!(
            "server speaks v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}, client sent v{}",
            hello.version
        );
        send_error(writer, ErrorCode::Version, &reason)?;
        return Ok(SessionEnd::Rejected(reason));
    }
    let params = config.negotiate(&hello);
    write_frame(writer, &Frame::HelloAck(params))?;
    writer.flush()?;

    let mut engine = ReplayEngine::with_options(
        &params,
        config.fault,
        config.retry,
        config.health,
        config.workers,
    );
    let mut governor = RateGovernor::new(params.target_rows_per_s);
    let mut tally = SessionTally::for_version(params.version);

    loop {
        match next_frame(reader, &mut frames, shutdown) {
            Ok(Some(Frame::Batch(ops))) => {
                let seq_base = engine.next_seq();
                match engine.submit_batch(&ops) {
                    Ok(completions) => {
                        tally.emit(writer, &completions)?;
                        write_frame(
                            writer,
                            &Frame::Batched(BatchAck {
                                seq_base,
                                accepted: ops.len() as u32,
                                emitted: completions.len() as u32,
                                outstanding: engine.outstanding() as u64,
                            }),
                        )?;
                        writer.flush()?;
                        if let Some(pause) = governor.on_rows(ops.len() as u64) {
                            thread::sleep(pause);
                        }
                    }
                    Err(CodicError::NoHealthyShards) => {
                        send_error(
                            writer,
                            ErrorCode::Unavailable,
                            &CodicError::NoHealthyShards.to_string(),
                        )?;
                    }
                    Err(policy) => {
                        send_error(writer, ErrorCode::Policy, &policy.to_string())?;
                    }
                }
            }
            Ok(Some(Frame::Flush)) => {
                let completions = engine.flush();
                tally.emit(writer, &completions)?;
                write_frame(
                    writer,
                    &Frame::Flushed(FlushAck {
                        emitted: completions.len() as u64,
                        now_max: engine.now_max(),
                    }),
                )?;
                writer.flush()?;
            }
            Ok(Some(Frame::Bye)) => {
                let completions = engine.flush();
                tally.emit(writer, &completions)?;
                write_frame(writer, &Frame::Summary(tally.summary()))?;
                writer.flush()?;
                return Ok(SessionEnd::Bye);
            }
            Ok(Some(other)) => {
                let reason = format!("expected Batch/Flush/Bye, got {}", frame_name(&other));
                send_error(writer, ErrorCode::Malformed, &reason)?;
                return Ok(SessionEnd::Rejected(reason));
            }
            Ok(None) => {
                // Graceful teardown: everything in flight is drained
                // (or failed, with a typed cause) and accounted, then
                // the client gets the honest totals of what the session
                // really delivered.
                let completions = engine.flush();
                tally.emit(writer, &completions)?;
                write_frame(writer, &Frame::Summary(tally.summary()))?;
                writer.flush()?;
                return Ok(SessionEnd::Shutdown);
            }
            Err(ProtoError::Io(e)) => return io_end(e),
            Err(e) => {
                send_error(writer, ErrorCode::Malformed, &e.to_string())?;
                return Ok(SessionEnd::Protocol(e));
            }
        }
    }
}

/// Running totals and checksum of one session's completion stream.
#[derive(Debug, Default)]
struct SessionTally {
    checksum: Fnv64,
    payload: Vec<u8>,
    /// The reusable batched-emission buffer (v3 sessions only).
    events: EventBuffer,
    /// True once the session negotiated protocol ≥ 3: completions ship
    /// packed into `Events` frames instead of one frame per op.
    batched: bool,
    ops: u64,
    row_ops: u64,
    failed: u64,
    max_finish_cycle: u64,
    total_energy_nj: f64,
}

impl SessionTally {
    /// A tally emitting in the negotiated version's transport: batched
    /// `Events` frames from v3 on, per-op frames for v2.
    fn for_version(version: u16) -> Self {
        SessionTally {
            batched: version >= 3,
            ..SessionTally::default()
        }
    }

    /// Streams `completions` — batched into `Events` frames (v3) or as
    /// per-op `Completion` / `Failed` frames (v2) — folding each
    /// *payload* into the totals and the session checksum. The hashed
    /// bytes are identical in both transports, so the checksum is
    /// framing-independent. Successes count toward `ops`/`row_ops`/
    /// energy; failures only toward `failed` — the `Summary` reports
    /// what the session really delivered, not what it attempted.
    fn emit<W: Write>(
        &mut self,
        writer: &mut W,
        completions: &[ReplayCompletion],
    ) -> io::Result<()> {
        for c in completions {
            if self.batched && self.events.is_full() {
                self.events.flush_to(writer)?;
            }
            if let Some(failure) = c.to_wire_failure() {
                self.failed += 1;
                self.max_finish_cycle = self.max_finish_cycle.max(failure.at_cycle);
                if self.batched {
                    let payload = self.events.push_failure(&failure);
                    self.checksum.update(payload);
                } else {
                    self.payload.clear();
                    proto::failure_payload(&failure, &mut self.payload);
                    self.checksum.update(&self.payload);
                    write_frame(writer, &Frame::Failed(failure))?;
                }
                continue;
            }
            let wire = c.to_wire();
            self.ops += 1;
            self.row_ops += u64::from(wire.op.row_op_kind().is_some());
            self.max_finish_cycle = self.max_finish_cycle.max(wire.finish_cycle);
            self.total_energy_nj += wire.energy_nj;
            if self.batched {
                // Encode once into the reusable buffer: the returned
                // slice is both the checksummed and the sent bytes.
                let payload = self.events.push_completion(&wire);
                self.checksum.update(payload);
            } else {
                self.payload.clear();
                proto::completion_payload(&wire, &mut self.payload);
                self.checksum.update(&self.payload);
                // Encode once: the checksummed bytes are the sent bytes.
                proto::write_completion_frame(writer, &self.payload)?;
            }
        }
        // The whole run ships before the caller's ack frame, so frame
        // order on the wire mirrors the unbatched emission order.
        self.events.flush_to(writer)?;
        Ok(())
    }

    fn summary(&self) -> Summary {
        Summary {
            ops: self.ops,
            row_ops: self.row_ops,
            failed: self.failed,
            max_finish_cycle: self.max_finish_cycle,
            total_energy_nj: self.total_energy_nj,
            checksum: self.checksum.value(),
        }
    }
}

fn io_end(e: io::Error) -> io::Result<SessionEnd> {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        Ok(SessionEnd::Disconnected)
    } else {
        Ok(SessionEnd::Io(e))
    }
}

/// The frame's name, for diagnostics (a `Batch`'s debug form would dump
/// the whole operation vector).
fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello(_) => "Hello",
        Frame::HelloAck(_) => "HelloAck",
        Frame::Batch(_) => "Batch",
        Frame::Flush => "Flush",
        Frame::Bye => "Bye",
        Frame::Completion(_) => "Completion",
        Frame::Failed(_) => "Failed",
        Frame::Batched(_) => "Batched",
        Frame::Flushed(_) => "Flushed",
        Frame::Summary(_) => "Summary",
        Frame::Error { .. } => "Error",
        Frame::Events(_) => "Events",
    }
}

fn send_error<W: Write>(writer: &mut W, code: ErrorCode, detail: &str) -> io::Result<()> {
    write_frame(
        writer,
        &Frame::Error {
            code,
            detail: detail.to_string(),
        },
    )?;
    writer.flush()
}

/// A cloneable handle that requests a [`ReplayServer`]'s graceful
/// shutdown: the accept loop stops taking new connections and every
/// live session drains its in-flight operations and sends an honest
/// `Summary` before closing.
#[derive(Debug, Clone, Default)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown (idempotent).
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The Unix-socket replay server.
///
/// Binds a filesystem socket, then serves each accepted connection as an
/// independent session on its own thread. The socket file is removed on
/// drop.
#[derive(Debug)]
pub struct ReplayServer {
    listener: UnixListener,
    config: ServerConfig,
    path: PathBuf,
    shutdown: ShutdownHandle,
}

impl ReplayServer {
    /// Binds `path`, reclaiming a *stale* socket file (one left behind
    /// by a dead server) but refusing to hijack a live endpoint: if a
    /// peer still accepts connections on `path`, this fails with
    /// [`io::ErrorKind::AddrInUse`] instead of silently unlinking the
    /// running server's socket.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; [`io::ErrorKind::AddrInUse`] when a
    /// live server already serves `path`.
    pub fn bind<P: AsRef<Path>>(path: P, config: ServerConfig) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        match UnixStream::connect(&path) {
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{} is served by a live replay server", path.display()),
                ))
            }
            // No socket file at all: nothing to reclaim.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            // A socket file nobody accepts on: a dead server's leftover.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                std::fs::remove_file(&path)?;
            }
            // Anything else (not a socket, no permission, …): leave the
            // path alone and let bind() report the real conflict.
            Err(_) => {}
        }
        let listener = UnixListener::bind(&path)?;
        Ok(ReplayServer {
            listener,
            config,
            path,
            shutdown: ShutdownHandle::default(),
        })
    }

    /// The bound socket path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A handle that stops this server gracefully from another thread:
    /// the accept loop exits and every live session drains its pool and
    /// sends an honest `Summary` before closing.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Serves exactly `connections` sessions (each on its own thread),
    /// then returns. `replay-server --connections N` and every test use
    /// this; [`ReplayServer::serve_forever`] is the daemon mode. Returns
    /// early — after joining live sessions — when the
    /// [`ShutdownHandle`] fires.
    ///
    /// # Errors
    ///
    /// Propagates an accept failure.
    pub fn serve_connections(&self, connections: usize) -> io::Result<()> {
        self.accept_loop(Some(connections))
    }

    /// Accepts and serves sessions until the [`ShutdownHandle`] fires
    /// (joining live sessions before returning) or the process exits.
    ///
    /// # Errors
    ///
    /// Propagates an accept failure.
    pub fn serve_forever(&self) -> io::Result<()> {
        self.accept_loop(None)
    }

    /// The shutdown-aware accept loop: non-blocking accepts polled at a
    /// small interval, so a shutdown request is noticed within ~10 ms
    /// even while no client is connecting.
    fn accept_loop(&self, connections: Option<usize>) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handles = Vec::new();
        let mut accepted = 0usize;
        while connections.is_none_or(|n| accepted < n) {
            if self.shutdown.is_shutdown() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    handles.push(self.spawn_session(stream));
                    accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }

    fn spawn_session(&self, stream: UnixStream) -> thread::JoinHandle<()> {
        let config = self.config.clone();
        let shutdown = self.shutdown.clone();
        thread::spawn(move || {
            // Accepted sockets are blocking with a read timeout: the
            // session loop parks in the frame reader for at most this
            // long before it re-checks the shutdown flag.
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
            let reader = stream.try_clone();
            let Ok(read_half) = reader else { return };
            let mut reader = BufReader::new(read_half);
            let mut writer = BufWriter::new(stream);
            let _ = serve_session_until(&mut reader, &mut writer, &config, &shutdown.0);
        })
    }
}

impl Drop for ReplayServer {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codic_core::ops::VariantId;

    fn params(max_outstanding: u32) -> SessionParams {
        SessionParams {
            version: PROTOCOL_VERSION,
            shards: 2,
            module_mib: 64,
            max_outstanding,
            target_rows_per_s: 0,
            refresh: 0,
            compute_rows: 0,
        }
    }

    fn zero_ops(rows: u64) -> Vec<CodicOp> {
        (0..rows)
            .map(|i| CodicOp::command(VariantId::DetZero, i * DramGeometry::ROW_BYTES))
            .collect()
    }

    #[test]
    fn negotiation_applies_defaults_and_caps() {
        let config = ServerConfig::default();
        let effective = config.negotiate(&SessionParams::defaults());
        assert_eq!(effective.shards, 4);
        assert_eq!(effective.module_mib, 64);
        assert_eq!(effective.max_outstanding, 1024);
        assert_eq!(effective.target_rows_per_s, 0);
        assert_eq!(effective.refresh, 0);

        // A client can lower but not raise the outstanding cap, and the
        // rate target combines as a minimum.
        let server = ServerConfig {
            target_rows_per_s: 1_000,
            ..ServerConfig::default()
        };
        let aggressive = SessionParams {
            version: PROTOCOL_VERSION,
            shards: 200,
            module_mib: 100,
            max_outstanding: 1 << 30,
            target_rows_per_s: 5_000,
            refresh: 1,
            compute_rows: u32::MAX,
        };
        let effective = server.negotiate(&aggressive);
        assert_eq!(effective.shards, 64, "shards are capped");
        assert_eq!(
            effective.module_mib, 128,
            "capacity rounds to a power of two"
        );
        assert_eq!(
            effective.max_outstanding, 1024,
            "cannot exceed the server cap"
        );
        assert_eq!(
            effective.target_rows_per_s, 1_000,
            "rate caps combine as min"
        );
        assert_eq!(effective.refresh, 1);
        assert_eq!(
            u64::from(effective.compute_rows),
            DramGeometry::module_mib(128).total_rows(),
            "compute region is clamped to the module"
        );

        // A server-side default region applies when the client defers.
        let server = ServerConfig {
            compute_rows: 64,
            ..ServerConfig::default()
        };
        let effective = server.negotiate(&SessionParams::defaults());
        assert_eq!(effective.compute_rows, 64);
    }

    #[test]
    fn engine_completions_match_the_direct_async_run_bit_for_bit() {
        let params = params(1024);
        let ops = zero_ops(300);
        let batches: Vec<&[CodicOp]> = ops.chunks(64).collect();

        // Served discipline.
        let mut engine = ReplayEngine::new(&params);
        let mut served = Vec::new();
        for batch in &batches {
            served.extend(engine.submit_batch(batch).unwrap());
        }
        served.extend(engine.flush());
        assert_eq!(served.len(), ops.len());

        // Direct run: same batches through bare submit_all_async, one
        // drive at the end.
        let config = ServerConfig::device_config(&params);
        let mut pool = DevicePool::new(params.shards as usize, &config);
        let mut futures = Vec::new();
        for batch in &batches {
            futures.extend(pool.submit_all_async(batch).unwrap());
        }
        pool.drive();
        let direct: Vec<_> = futures
            .iter_mut()
            .map(|f| f.try_take().expect("driven to idle"))
            .collect();

        for (i, c) in direct.iter().enumerate() {
            let served = served
                .iter()
                .find(|r| r.seq == i as u64)
                .expect("every op completes once");
            assert_eq!(served.completion.op, c.op);
            assert_eq!(served.completion.finish_cycle, c.finish_cycle, "op {i}");
            assert_eq!(
                served.completion.cost.energy_nj.to_bits(),
                c.cost.energy_nj.to_bits(),
                "op {i}"
            );
        }
    }

    #[test]
    fn drained_completions_arrive_in_completion_order() {
        let params = params(1024);
        let mut engine = ReplayEngine::new(&params);
        let mut all = Vec::new();
        for batch in zero_ops(500).chunks(128) {
            all.extend(engine.submit_batch(batch).unwrap());
        }
        all.extend(engine.flush());
        // Per shard, finish cycles never go backwards; within a drain,
        // ties break by sequence.
        for shard in 0..params.shards {
            let cycles: Vec<u64> = all
                .iter()
                .filter(|r| r.shard == shard)
                .map(|r| r.completion.finish_cycle)
                .collect();
            assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "shard {shard}");
            assert!(!cycles.is_empty());
        }
    }

    #[test]
    fn tiny_outstanding_bound_is_enforced_between_batches() {
        let tiny = params(8);
        let mut engine = ReplayEngine::new(&tiny);
        for batch in zero_ops(256).chunks(32) {
            engine.submit_batch(batch).unwrap();
            assert!(
                engine.outstanding() <= 8,
                "backpressure must hold the window at 8, got {}",
                engine.outstanding()
            );
        }
        let rest = engine.flush();
        assert!(engine.outstanding() == 0 && !rest.is_empty());
    }

    #[test]
    fn bind_reclaims_stale_sockets_but_never_hijacks_live_ones() {
        let path = std::env::temp_dir().join(format!("codic-bind-{}.sock", std::process::id()));
        // A live server on the path: a second bind must refuse.
        let live = ReplayServer::bind(&path, ServerConfig::default()).expect("first bind");
        let err = ReplayServer::bind(&path, ServerConfig::default())
            .expect_err("must not hijack a live endpoint");
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        drop(live); // removes the socket file
                    // A stale socket file (dead listener, file left behind): reclaim.
        let dead = std::os::unix::net::UnixListener::bind(&path).expect("raw bind");
        drop(dead); // the raw listener does NOT unlink its file
        assert!(path.exists(), "stale socket file left behind");
        let reclaimed =
            ReplayServer::bind(&path, ServerConfig::default()).expect("stale socket is reclaimed");
        drop(reclaimed);
        assert!(!path.exists());
    }

    /// Runs the full batch/flush discipline through an engine and
    /// returns every completion in emission order.
    fn run_engine(engine: &mut ReplayEngine, ops: &[CodicOp]) -> Vec<ReplayCompletion> {
        let mut all = Vec::new();
        for batch in ops.chunks(64) {
            all.extend(engine.submit_batch(batch).unwrap());
        }
        all.extend(engine.flush());
        all
    }

    #[test]
    fn worker_engine_matches_inline_engine_bit_for_bit() {
        // Including a tiny outstanding bound, so the lockstep
        // backpressure loop actually fires in both modes.
        for max_outstanding in [1024, 8] {
            let params = params(max_outstanding);
            let ops = zero_ops(300);
            let mut inline = ReplayEngine::new(&params);
            let mut workers = ReplayEngine::with_options(
                &params,
                None,
                RetryPolicy::default(),
                HealthPolicy::default(),
                true,
            );
            let a = run_engine(&mut inline, &ops);
            let b = run_engine(&mut workers, &ops);
            assert_eq!(a, b, "max_outstanding {max_outstanding}");
        }
    }

    #[test]
    fn worker_engine_matches_inline_under_misfire_faults() {
        let params = params(64);
        let fault = Some(FaultPlan::new(11).with_misfires(500));
        let retry = RetryPolicy::default();
        let health = HealthPolicy::default();
        let ops = zero_ops(400);
        let mut inline = ReplayEngine::with_options(&params, fault, retry, health, false);
        let mut workers = ReplayEngine::with_options(&params, fault, retry, health, true);
        let a = run_engine(&mut inline, &ops);
        let b = run_engine(&mut workers, &ops);
        assert_eq!(a, b);
    }

    /// Serves one in-memory session at `version` and returns the server's
    /// reply frames.
    fn run_session(version: u16, config: &ServerConfig) -> Vec<Frame> {
        let hello = SessionParams {
            version,
            ..SessionParams::defaults()
        };
        let mut input = Vec::new();
        write_frame(&mut input, &Frame::Hello(hello)).unwrap();
        for batch in zero_ops(300).chunks(64) {
            write_frame(&mut input, &Frame::Batch(batch.to_vec())).unwrap();
        }
        write_frame(&mut input, &Frame::Bye).unwrap();
        let mut output = Vec::new();
        let end = serve_session(&mut input.as_slice(), &mut output, config).unwrap();
        assert!(matches!(end, SessionEnd::Bye), "session end: {end:?}");
        let mut frames = Vec::new();
        let mut rest = output.as_slice();
        while !rest.is_empty() {
            frames.push(proto::read_frame(&mut rest).unwrap());
        }
        frames
    }

    /// The payload units of a reply stream, flattened across transports.
    fn stream_shape(frames: &[Frame]) -> (u64, u64, u64, usize, usize) {
        let (mut completions, mut failures, mut events_frames, mut bare) = (0u64, 0u64, 0, 0);
        let mut summary_checksum = 0u64;
        for frame in frames {
            match frame {
                Frame::Events(events) => {
                    events_frames += 1;
                    for e in events {
                        match e {
                            proto::SessionEvent::Completion(_) => completions += 1,
                            proto::SessionEvent::Failure(_) => failures += 1,
                        }
                    }
                }
                Frame::Completion(_) => {
                    bare += 1;
                    completions += 1;
                }
                Frame::Failed(_) => {
                    bare += 1;
                    failures += 1;
                }
                Frame::Summary(s) => summary_checksum = s.checksum,
                _ => {}
            }
        }
        (completions, failures, summary_checksum, events_frames, bare)
    }

    #[test]
    fn v3_sessions_batch_v2_sessions_interoperate_and_checksums_agree() {
        let config = ServerConfig::default();
        let v3 = run_session(3, &config);
        let v2 = run_session(2, &config);
        let (ops3, failed3, sum3, events3, bare3) = stream_shape(&v3);
        let (ops2, failed2, sum2, events2, bare2) = stream_shape(&v2);
        assert_eq!(ops3, 300);
        assert_eq!(ops2, 300);
        assert_eq!(failed3 + failed2, 0);
        assert!(events3 > 0, "v3 streams batched Events frames");
        assert_eq!(bare3, 0, "v3 sends no per-op frames");
        assert_eq!(events2, 0, "v2 never sees an Events frame");
        assert_eq!(bare2, 300, "v2 gets one frame per op");
        assert_eq!(sum3, sum2, "the session checksum is framing-independent");
        // The ack echoes the negotiated version.
        assert!(matches!(v3[0], Frame::HelloAck(p) if p.version == 3));
        assert!(matches!(v2[0], Frame::HelloAck(p) if p.version == 2));
        // Worker mode changes neither the stream shape nor the checksum.
        let piped = ServerConfig {
            workers: true,
            ..ServerConfig::default()
        };
        let v3w = run_session(3, &piped);
        assert_eq!(stream_shape(&v3w).2, sum3);
    }

    #[test]
    fn out_of_range_versions_are_rejected() {
        let config = ServerConfig::default();
        for version in [0u16, 1, 4, u16::MAX] {
            let hello = SessionParams {
                version,
                ..SessionParams::defaults()
            };
            let mut input = Vec::new();
            write_frame(&mut input, &Frame::Hello(hello)).unwrap();
            let mut output = Vec::new();
            let end = serve_session(&mut input.as_slice(), &mut output, &config).unwrap();
            assert!(
                matches!(end, SessionEnd::Rejected(_)),
                "v{version}: {end:?}"
            );
            let reply = proto::read_frame(&mut output.as_slice()).unwrap();
            assert!(
                matches!(
                    reply,
                    Frame::Error {
                        code: ErrorCode::Version,
                        ..
                    }
                ),
                "v{version}: {reply:?}"
            );
        }
    }

    #[test]
    fn rejected_batches_consume_no_sequence_numbers() {
        let restricted = SessionParams {
            module_mib: 64,
            ..params(1024)
        };
        let mut engine = ReplayEngine::new(&restricted);
        // Out-of-module destructive op: rejected by the safe range.
        let bad = vec![CodicOp::command(VariantId::DetZero, 1 << 40)];
        assert!(engine.submit_batch(&bad).is_err());
        assert_eq!(engine.next_seq(), 0);
        assert_eq!(engine.outstanding(), 0);
        let ok = engine.submit_batch(&zero_ops(4)).unwrap();
        let drained = ok.len() + engine.flush().len();
        assert_eq!(drained, 4);
        assert_eq!(engine.next_seq(), 4);
    }
}
