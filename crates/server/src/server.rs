//! The replay server: Unix-socket sessions served over a sharded
//! [`DevicePool`].
//!
//! Each connection is one independent session with its own pool (its own
//! shard clocks, mode registers, and policy state), served on its own
//! thread. The per-session serving loop is [`ReplayEngine`]:
//!
//! 1. a decoded [`Frame::Batch`] is submitted
//!    through [`DevicePool::submit_all_async`] (all-or-nothing policy:
//!    a rejected batch turns into one `Error` frame and touches nothing);
//! 2. backpressure: while [`DevicePool::outstanding`] exceeds the
//!    session's `max_outstanding`, the engine relieves pressure with
//!    [`DevicePool::step`] (one event per busy shard), never by blocking
//!    the socket;
//! 3. resolved [`OpFuture`]s are drained non-blockingly
//!    ([`OpFuture::try_take`]) and streamed back as typed `Completion`
//!    frames in completion order (ascending finish cycle at each drain
//!    point, ties broken by submission sequence).
//!
//! Determinism contract: the engine's DRAM timeline is a pure function
//! of the submission sequence (batch boundaries included). With
//! `max_outstanding` at or above the pool's natural in-flight bound
//! (three 64-deep queues plus in-flight commands per shard), the
//! backpressure loop never fires and the served timeline is
//! *instruction-for-instruction* the direct
//! [`DevicePool::submit_all_async`] + [`DevicePool::drive`] run — the
//! bit-identity the end-to-end tests pin. Below that bound it stays
//! deterministic, but clocks advance earlier. The replay-rate governor
//! only ever sleeps the host thread, so it cannot perturb cycles.
//!
//! Two orthogonal serving options preserve that contract bit for bit:
//! [`ServerConfig::workers`] runs the engine over pipelined
//! [`ShardWorkers`] (one thread per shard behind SPSC rings, drained at
//! the same loop points), and protocol-v3 sessions receive their
//! completions packed into batched `Events` frames whose *payload*
//! bytes — the only bytes the session checksum hashes — are identical
//! to the per-op frames a v2 session gets.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use codic_core::device::DeviceConfig;
use codic_core::error::CodicError;
use codic_core::executor::OpFuture;
use codic_core::fault::{FaultPlan, HealthPolicy, RetryPolicy};
use codic_core::fleet::{FleetConfig, FleetHandle, TenantId};
use codic_core::ops::CodicOp;
use codic_core::pool::{DevicePool, ShardHealth};
use codic_core::worker::{DrainedOp, ShardWorkers};
use codic_dram::{DramGeometry, TimingParams};

use crate::governor::RateGovernor;
use crate::proto::{
    self, write_frame_in, BatchAck, ErrorCode, EventBuffer, FlushAck, Fnv64, Frame, FrameReader,
    ProtoError, ResumeAck, SessionParams, Summary, WireCompletion, WireFailure, MAX_QOS_WEIGHT,
    MAX_QUOTA_CLAIM, MAX_TENANT_CLAIM, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Server-side session defaults and caps.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Default pool shards per session (a `Hello` may override).
    pub shards: usize,
    /// Default module capacity per session, in MiB.
    pub module_mib: u64,
    /// Default and maximum outstanding-operation bound per session.
    pub max_outstanding: usize,
    /// Server-wide replay-rate cap in rows/s (0 = uncapped); a session's
    /// own target can only lower it.
    pub target_rows_per_s: u64,
    /// Default refresh-engine state.
    pub refresh: bool,
    /// Seeded fault-injection plan applied to every session's pool
    /// (`None` = no injection — the production default).
    pub fault: Option<FaultPlan>,
    /// Retry policy for misfired operations.
    pub retry: RetryPolicy,
    /// When sessions quarantine their shards.
    pub health: HealthPolicy,
    /// Default bulk-bitwise compute region, in rows at the top of the
    /// module (0 = compute disabled; a `Hello` may request its own).
    pub compute_rows: u64,
    /// Serve sessions through pipelined [`ShardWorkers`] (one thread
    /// per shard, fed by SPSC rings) instead of the inline
    /// [`DevicePool`]. The completion stream is bit-identical either
    /// way; worker mode overlaps decode, engine stepping, and encoding
    /// across cores.
    pub workers: bool,
    /// Socket read timeout in milliseconds: how long a session thread
    /// parks inside a read before re-checking the shutdown flag and the
    /// idle deadline (`--read-timeout-ms`).
    pub read_timeout_ms: u64,
    /// Idle deadline in milliseconds (`--session-idle-ms`): a connected
    /// session that sends no frame for this long is torn down with an
    /// honest `Error` + `Summary` ([`SessionEnd::Idle`]), and a parked
    /// v4 session nobody resumes for this long is reaped and its
    /// journal freed.
    pub session_idle_ms: u64,
    /// Per-session cap on the v4 resume journal, in bytes: the journal
    /// keeps the most recent event payloads up to this bound, evicting
    /// the oldest whole events first. A `Resume` pointing before the
    /// retained window is honestly rejected (`--journal-max-kib`).
    pub journal_max_bytes: usize,
    /// Tenant slots in the shared fleet (`--fleet-slots`; 0 = private
    /// pools, the default). With `N > 0` every session is served from
    /// one [`SharedFleet`](codic_core::fleet::SharedFleet) carved into
    /// `N` leases of [`ServerConfig::shards`] shards each: sessions
    /// share the pool's machinery but each tenant's event stream stays
    /// bit-identical to a private pool of its slot shape. Fleet mode is
    /// incompatible with [`ServerConfig::workers`] (the fleet *is* the
    /// serving substrate).
    pub fleet_slots: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            module_mib: 64,
            // At or above the pool's natural in-flight bound for the
            // default 4 shards, so paced replay is instruction-for-
            // instruction the direct submit_all_async + drive run.
            max_outstanding: 1024,
            target_rows_per_s: 0,
            refresh: false,
            fault: None,
            retry: RetryPolicy::default(),
            health: HealthPolicy::default(),
            compute_rows: 0,
            workers: false,
            read_timeout_ms: 25,
            session_idle_ms: 30_000,
            journal_max_bytes: 8 << 20,
            fleet_slots: 0,
        }
    }
}

impl ServerConfig {
    /// Resolves a client `Hello` against the server's defaults and caps
    /// into the effective session parameters of the `HelloAck`.
    #[must_use]
    pub fn negotiate(&self, hello: &SessionParams) -> SessionParams {
        let shards = match hello.shards {
            0 => self.shards,
            n => (n as usize).min(64),
        };
        let module_mib = match hello.module_mib {
            0 => self.module_mib,
            // Keep the per-session footprint bounded and row-divisible.
            n => u64::from(n).clamp(1, 4096).next_power_of_two(),
        };
        let max_outstanding = match hello.max_outstanding {
            0 => self.max_outstanding,
            n => (n as usize).min(self.max_outstanding.max(1)),
        };
        let version = hello.version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION);
        // v5's quota_ops is an additional bound on the outstanding
        // window — the fleet enforces the effective value as the
        // tenant's quota, and a private-pool session's engine uses it as
        // its backpressure window, so the two serve identically.
        let max_outstanding = match (version >= 5, hello.quota_ops) {
            (true, q) if q != 0 => max_outstanding.min(q as usize).max(1),
            _ => max_outstanding,
        };
        let target_rows_per_s = match (self.target_rows_per_s, hello.target_rows_per_s) {
            (0, t) => t,
            (s, 0) => s,
            (s, t) => s.min(t),
        };
        let refresh = match hello.refresh {
            0 => false,
            1 => true,
            _ => self.refresh,
        };
        // The compute region can never exceed the module (the HelloAck
        // reports the honest effective row count).
        let module_rows = DramGeometry::module_mib(module_mib).total_rows();
        let compute_rows = match hello.compute_rows {
            0 => self.compute_rows,
            n => u64::from(n),
        }
        .min(module_rows);
        SessionParams {
            // The session runs the *client's* version (already validated
            // against the supported range by the handshake); the ack
            // echoes it so a v2 client interoperates unchanged.
            version,
            shards: shards as u16,
            module_mib: module_mib as u32,
            max_outstanding: max_outstanding as u32,
            target_rows_per_s,
            refresh: u8::from(refresh),
            compute_rows: compute_rows as u32,
            qos_weight: if version >= 5 {
                match hello.qos_weight {
                    0 => 1,
                    w => w.min(MAX_QOS_WEIGHT),
                }
            } else {
                0
            },
            // `tenants` is 0 for private-pool serving; fleet-mode
            // handshakes overwrite it with the fleet's slot count.
            tenants: 0,
            quota_ops: if version >= 5 {
                max_outstanding as u32
            } else {
                0
            },
        }
    }

    /// The device configuration a session with `params` runs on.
    /// The protocol pins the timing to DDR3-1600 (11-11-11).
    #[must_use]
    pub fn device_config(params: &SessionParams) -> DeviceConfig {
        DeviceConfig::new(
            DramGeometry::module_mib(u64::from(params.module_mib)),
            TimingParams::ddr3_1600_11(),
        )
        .with_refresh(params.refresh == 1)
        .with_compute_rows(u64::from(params.compute_rows))
    }
}

/// One finished operation with its session metadata — the in-process
/// twin of the wire's `Completion` frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayCompletion {
    /// Zero-based submission sequence number within the session.
    pub seq: u64,
    /// The shard that served the operation.
    pub shard: u16,
    /// The typed completion from the device layer.
    pub completion: codic_core::device::OpCompletion,
}

impl ReplayCompletion {
    /// The wire form of this completion.
    #[must_use]
    pub fn to_wire(&self) -> WireCompletion {
        WireCompletion {
            seq: self.seq,
            shard: self.shard,
            op: self.completion.op,
            finish_cycle: self.completion.finish_cycle,
            busy_cycles: self.completion.cost.busy_cycles,
            activations: self.completion.cost.activations,
            energy_nj: self.completion.cost.energy_nj,
            fingerprint: self.completion.fingerprint,
        }
    }

    /// The wire form of this completion's failure, when it failed.
    #[must_use]
    pub fn to_wire_failure(&self) -> Option<WireFailure> {
        self.completion.outcome.cause().map(|cause| WireFailure {
            seq: self.seq,
            shard: self.shard,
            op: self.completion.op,
            at_cycle: self.completion.finish_cycle,
            cause,
            attempts: self.completion.attempts,
        })
    }
}

/// The engine's execution substrate: the inline pool, or one worker
/// thread per shard behind SPSC rings. Both run the identical
/// submission discipline; the worker determinism tests pin the
/// bit-identity.
enum EngineCore {
    Inline(DevicePool),
    Workers(ShardWorkers),
    /// A tenant lease on the server's shared fleet: the session's ops
    /// run on its slot's shards of the one shared pool, demultiplexed
    /// into a stream bit-identical to a private pool of the same shape
    /// (the fleet isolation proptests pin it).
    Fleet(FleetSession),
}

impl fmt::Debug for EngineCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineCore::Inline(pool) => f.debug_tuple("Inline").field(pool).finish(),
            EngineCore::Workers(w) => write!(f, "Workers({} shards)", w.shards()),
            EngineCore::Fleet(s) => write!(f, "Fleet(slot {})", s.tenant.slot()),
        }
    }
}

/// One session's tenancy on the shared fleet. Dropping it — session
/// finished, torn down, or reaped while parked — releases the slot back
/// to the fleet for the next `Hello`.
struct FleetSession {
    handle: FleetHandle,
    tenant: TenantId,
    /// Lease-local shard health as of the last batch/flush boundary —
    /// exactly the points the serving loop reads it.
    health: Vec<ShardHealth>,
}

impl Drop for FleetSession {
    fn drop(&mut self) {
        self.handle.release(self.tenant);
    }
}

/// The deterministic per-session serving core: typed batches in,
/// completion-ordered [`ReplayCompletion`]s out.
///
/// This is exactly the discipline the wire server runs, factored out so
/// the client's `--verify` mode and the end-to-end tests can replay it
/// in process and demand bit-identical results.
#[derive(Debug)]
pub struct ReplayEngine {
    core: EngineCore,
    /// In-flight futures — inline mode only (workers track their own).
    pending: Vec<(u64, u16, OpFuture)>,
    scratch: Vec<(u64, u16, OpFuture)>,
    next_seq: u64,
    max_outstanding: usize,
}

impl ReplayEngine {
    /// An engine over a fresh pool per `params` (see
    /// [`ServerConfig::device_config`]), with no fault injection — the
    /// reference the client's `--verify` mode replays against.
    #[must_use]
    pub fn new(params: &SessionParams) -> Self {
        ReplayEngine::with_faults(
            params,
            None,
            RetryPolicy::default(),
            HealthPolicy::default(),
        )
    }

    /// An engine whose pool carries a fault-injection plan, retry
    /// policy, and health policy. `fault = None` makes this identical to
    /// [`ReplayEngine::new`].
    #[must_use]
    pub fn with_faults(
        params: &SessionParams,
        fault: Option<FaultPlan>,
        retry: RetryPolicy,
        health: HealthPolicy,
    ) -> Self {
        ReplayEngine::with_options(params, fault, retry, health, false)
    }

    /// The full constructor: `pipelined = true` serves the session
    /// through [`ShardWorkers`] — one thread per shard, fed by SPSC
    /// rings, so decode, submission, engine stepping, and completion
    /// encoding overlap — with a completion stream bit-identical to the
    /// inline pool (the tests here and the worker determinism proptests
    /// pin it).
    #[must_use]
    pub fn with_options(
        params: &SessionParams,
        fault: Option<FaultPlan>,
        retry: RetryPolicy,
        health: HealthPolicy,
        pipelined: bool,
    ) -> Self {
        let mut config = ServerConfig::device_config(params).with_retry(retry);
        if let Some(plan) = fault {
            config = config.with_faults(plan);
        }
        let shards = (params.shards as usize).max(1);
        let core = if pipelined {
            let mut workers = ShardWorkers::launch(shards, &config);
            workers.set_health_policy(health);
            EngineCore::Workers(workers)
        } else {
            let mut pool = DevicePool::new(shards, &config);
            pool.set_health_policy(health);
            EngineCore::Inline(pool)
        };
        ReplayEngine {
            core,
            pending: Vec::new(),
            scratch: Vec::new(),
            next_seq: 0,
            max_outstanding: (params.max_outstanding as usize).max(1),
        }
    }

    /// An engine serving one tenant of a shared fleet: acquires a slot
    /// with the session's negotiated QoS weight and outstanding-op quota
    /// and returns `None` when every slot is taken. The slot is released
    /// when the engine drops.
    #[must_use]
    pub fn for_fleet(params: &SessionParams, handle: &FleetHandle) -> Option<Self> {
        let quota = (params.max_outstanding as usize).max(1);
        let tenant = handle.acquire_with(u32::from(params.qos_weight.max(1)), quota)?;
        let health = handle.health(tenant);
        Some(ReplayEngine {
            core: EngineCore::Fleet(FleetSession {
                handle: handle.clone(),
                tenant,
                health,
            }),
            pending: Vec::new(),
            scratch: Vec::new(),
            next_seq: 0,
            max_outstanding: quota,
        })
    }

    /// Submits one batch and returns the completions that drained at
    /// this boundary, in completion order.
    ///
    /// # Errors
    ///
    /// Returns the policy error; the batch was all-or-nothing rejected
    /// and the engine state is untouched (no sequence numbers consumed).
    pub fn submit_batch(&mut self, ops: &[CodicOp]) -> Result<Vec<ReplayCompletion>, CodicError> {
        match &mut self.core {
            EngineCore::Inline(pool) => {
                // The routed variant reports where each op actually
                // landed: a shard wedging mid-batch is quarantined
                // inside the pool and its traffic re-routed, and the
                // completion must carry the shard that really served it.
                let routed = pool.submit_all_async_routed(ops)?;
                for (shard, future) in routed {
                    self.pending.push((self.next_seq, shard as u16, future));
                    self.next_seq += 1;
                }
                // Backpressure: relieve the in-flight window one engine
                // event at a time; never over-drive (drive() would run
                // all the way to idle and distort the timeline for
                // nothing). step() reports no progress once every busy
                // shard is stuck, so a wedged clock cannot spin this
                // loop.
                while pool.outstanding() > self.max_outstanding {
                    if !pool.step() {
                        break;
                    }
                }
                // The batch boundary doubles as the op-deadline check: a
                // shard that wedged during this batch is quarantined
                // here, its stranded ops delivered as typed failures in
                // this very drain. With fault injection disabled this
                // never fires.
                pool.check_health();
                Ok(self.drain_ready())
            }
            EngineCore::Workers(workers) => {
                // All-or-nothing pre-flight happens coordinator-side
                // before anything reaches a ring, so a rejected batch
                // consumes no sequence numbers, same as inline.
                workers.submit_batch(self.next_seq, ops)?;
                self.next_seq += ops.len() as u64;
                // First barrier: collect what resolved while this batch
                // was being decoded and refresh the statuses the
                // backpressure loop gates on. Drains never advance a
                // device, so splitting the drain around the loop yields
                // exactly the inline path's single-drain set.
                let mut drained = workers.drain_ready();
                while workers.outstanding() > self.max_outstanding {
                    if !workers.step_all() {
                        break;
                    }
                }
                workers.check_health();
                drained.extend(workers.drain_ready());
                Ok(into_completions(drained))
            }
            EngineCore::Fleet(fleet) => {
                // The fleet runs this exact discipline inside the
                // tenant's lease — routed async submission, step-wise
                // quota backpressure, a health check at the batch
                // boundary — and demultiplexes the drained events per
                // tenant. A rejected batch is all-or-nothing there too.
                let (receipt, events) = fleet.handle.submit(fleet.tenant, ops)?;
                self.next_seq += u64::from(receipt.accepted);
                fleet.health = fleet.handle.health(fleet.tenant);
                Ok(events
                    .into_iter()
                    .map(|e| ReplayCompletion {
                        seq: e.seq,
                        shard: e.shard,
                        completion: e.completion,
                    })
                    .collect())
            }
        }
    }

    /// Drives every shard to idle and returns everything still pending,
    /// in completion order. A shard that cannot reach idle (stuck clock)
    /// is quarantined at this boundary and its stranded operations are
    /// delivered as typed failures, so a flush always resolves every
    /// pending operation one way or the other.
    pub fn flush(&mut self) -> Vec<ReplayCompletion> {
        match &mut self.core {
            EngineCore::Inline(pool) => {
                pool.drive();
                pool.check_health();
            }
            EngineCore::Workers(workers) => {
                let mut drained = workers.flush();
                workers.check_health();
                drained.extend(workers.drain_ready());
                return into_completions(drained);
            }
            EngineCore::Fleet(fleet) => {
                let (_, events) = fleet.handle.flush(fleet.tenant);
                fleet.health = fleet.handle.health(fleet.tenant);
                return events
                    .into_iter()
                    .map(|e| ReplayCompletion {
                        seq: e.seq,
                        shard: e.shard,
                        completion: e.completion,
                    })
                    .collect();
            }
        }
        self.drain_ready()
    }

    /// Per-shard health of the serving pool.
    #[must_use]
    pub fn health(&self) -> &[ShardHealth] {
        match &self.core {
            EngineCore::Inline(pool) => pool.health(),
            EngineCore::Workers(workers) => workers.health(),
            EngineCore::Fleet(fleet) => &fleet.health,
        }
    }

    /// Operations submitted but not yet completed (the backpressure
    /// signal; bounded by the session's `max_outstanding` between
    /// batches). In worker mode this is the count as of the last
    /// barrier — exact at every point the serving loop reads it.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        match &self.core {
            EngineCore::Inline(pool) => pool.outstanding(),
            EngineCore::Workers(workers) => workers.outstanding(),
            EngineCore::Fleet(fleet) => fleet.handle.outstanding(fleet.tenant),
        }
    }

    /// The slowest shard's current cycle.
    #[must_use]
    pub fn now_max(&self) -> u64 {
        match &self.core {
            EngineCore::Inline(pool) => (0..pool.shards())
                .map(|s| pool.device(s).now())
                .max()
                .unwrap_or(0),
            EngineCore::Workers(workers) => workers.now_max(),
            EngineCore::Fleet(fleet) => fleet.handle.now_max(fleet.tenant),
        }
    }

    /// Sequence number the next submitted operation will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Moves every resolved future out of the pending set, sorted into
    /// completion order: ascending finish cycle, ties broken by
    /// submission sequence. (Per shard this is exactly resolution order;
    /// across shards the tie-break makes the interleaving deterministic.)
    fn drain_ready(&mut self) -> Vec<ReplayCompletion> {
        let mut ready = Vec::new();
        self.scratch.clear();
        for (seq, shard, mut future) in self.pending.drain(..) {
            match future.try_take() {
                Some(completion) => ready.push(ReplayCompletion {
                    seq,
                    shard,
                    completion,
                }),
                None => self.scratch.push((seq, shard, future)),
            }
        }
        std::mem::swap(&mut self.pending, &mut self.scratch);
        ready.sort_by_key(|r| (r.completion.finish_cycle, r.seq));
        ready
    }
}

/// Sorts worker-drained completions into the same completion order the
/// inline path emits: ascending finish cycle, ties broken by submission
/// sequence — a total order (seq is unique), so the emitted stream is
/// independent of which worker thread resolved what first.
fn into_completions(mut drained: Vec<DrainedOp>) -> Vec<ReplayCompletion> {
    drained.sort_by_key(|d| (d.completion.finish_cycle, d.seq));
    drained
        .into_iter()
        .map(|d| ReplayCompletion {
            seq: d.seq,
            shard: d.shard,
            completion: d.completion,
        })
        .collect()
}

/// Why a session ended.
#[derive(Debug)]
pub enum SessionEnd {
    /// The client said `Bye`; the summary was sent.
    Bye,
    /// The client hung up without a `Bye`.
    Disconnected,
    /// The session was aborted after a malformed frame (an `Error`
    /// frame was sent when possible).
    Protocol(ProtoError),
    /// The session was rejected before or during the handshake, or a
    /// well-formed frame arrived out of protocol order; the reason was
    /// also sent to the client as an `Error` frame.
    Rejected(String),
    /// The server shut down gracefully: in-flight operations were
    /// drained (or failed with a typed cause) and an honest `Summary`
    /// was sent before the connection closed.
    Shutdown,
    /// The client sent no frame for the whole idle deadline
    /// ([`ServerConfig::session_idle_ms`]): in-flight operations were
    /// drained, an `Error` and an honest `Summary` were sent, and the
    /// session's memory (journal included) was freed.
    Idle,
    /// A protocol ≥ 4 session's connection was cut or corrupted
    /// mid-stream: the session state was parked in the
    /// [`SessionRegistry`] and a reconnecting client can
    /// [`Frame::Resume`] it. This ends the *connection*, not the
    /// session.
    Suspended,
    /// The socket failed.
    Io(io::Error),
}

/// splitmix64 — the deterministic generator shared with the fault and
/// chaos layers, used here to mint session tokens from a counter.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The full state of one live v4 session, detached from any particular
/// connection so a cut can park it and a [`Frame::Resume`] can pick it
/// back up.
struct SessionState {
    params: SessionParams,
    token: u64,
    engine: ReplayEngine,
    governor: RateGovernor,
    tally: SessionTally,
    /// The summary of a completed session (`Bye` processed), kept so a
    /// client whose connection died before the `Summary` arrived can
    /// resume and receive it.
    finished: Option<Summary>,
}

impl SessionState {
    /// A session with a private-pool engine built from the config.
    #[cfg(test)]
    fn new(params: SessionParams, token: u64, config: &ServerConfig) -> Self {
        SessionState::from_engine(
            params,
            token,
            config,
            ReplayEngine::with_options(
                &params,
                config.fault,
                config.retry,
                config.health,
                config.workers,
            ),
        )
    }

    /// A session around a pre-built engine — the fleet path constructs
    /// its engine (acquiring a tenant slot) before the `HelloAck`.
    fn from_engine(
        params: SessionParams,
        token: u64,
        config: &ServerConfig,
        engine: ReplayEngine,
    ) -> Self {
        SessionState {
            params,
            token,
            engine,
            governor: RateGovernor::new(params.target_rows_per_s),
            tally: SessionTally::for_params(&params, config.journal_max_bytes),
            finished: None,
        }
    }
}

/// A parked session awaiting its client's [`Frame::Resume`].
struct ParkedSession {
    session: SessionState,
    parked_at: Instant,
}

/// Where disconnected v4 sessions wait for their clients to come back.
///
/// One registry serves one [`ReplayServer`] (every connection thread
/// shares it); the in-memory [`serve_session`] helpers create a
/// throwaway registry per call, so a parked session there is simply
/// dropped — exactly the old semantics. Parked sessions are bounded in
/// time by [`SessionRegistry::reap_idle`] (the accept loop runs it) and
/// in memory by each session's journal cap.
#[derive(Default)]
pub struct SessionRegistry {
    inner: Mutex<HashMap<u64, ParkedSession>>,
    /// Signalled on every park, so a resume that arrives before the old
    /// connection's thread noticed the cut can wait for the handoff.
    parked: Condvar,
    tokens: AtomicU64,
}

impl fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SessionRegistry({} parked)", self.parked_sessions())
    }
}

impl SessionRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        SessionRegistry::default()
    }

    /// Sessions currently parked (cut mid-stream, awaiting resume).
    #[must_use]
    pub fn parked_sessions(&self) -> usize {
        self.lock().len()
    }

    /// Drops every parked session older than `idle`, freeing its
    /// journal, and returns how many were reaped.
    pub fn reap_idle(&self, idle: Duration) -> usize {
        let mut inner = self.lock();
        let before = inner.len();
        inner.retain(|_, parked| parked.parked_at.elapsed() < idle);
        before - inner.len()
    }

    /// A fresh session token: unique per registry (counter-derived,
    /// whitened through splitmix64) and never 0.
    fn mint_token(&self) -> u64 {
        let n = self.tokens.fetch_add(1, Ordering::Relaxed);
        mix64(n.wrapping_add(0xc0d1_c0de_5e55_1040)).max(1)
    }

    fn park(&self, session: SessionState) {
        let mut inner = self.lock();
        inner.insert(
            session.token,
            ParkedSession {
                session,
                parked_at: Instant::now(),
            },
        );
        self.parked.notify_all();
    }

    /// Removes and returns the parked session with `token`, waiting up
    /// to `grace` for the previous connection's thread to park it (the
    /// reconnect usually wins that race by a few milliseconds).
    fn claim(&self, token: u64, grace: Duration) -> Option<SessionState> {
        let deadline = Instant::now() + grace;
        let mut inner = self.lock();
        loop {
            if let Some(parked) = inner.remove(&token) {
                return Some(parked.session);
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            inner = match self.parked.wait_timeout(inner, left) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// The registry lock, recovered from poisoning: a panicking session
    /// thread must not wedge every other session's resume path.
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, ParkedSession>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Serves one established session over any byte stream (the Unix-socket
/// path wraps this; tests may drive it over an in-memory pipe).
///
/// # Errors
///
/// Returns the socket failure that ended the session, if any; protocol
/// violations and client disconnects are reported in [`SessionEnd`].
pub fn serve_session<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    config: &ServerConfig,
) -> io::Result<SessionEnd> {
    serve_session_until(reader, writer, config, &AtomicBool::new(false))
}

/// [`serve_session`] with a shutdown flag: when `shutdown` becomes true
/// the session stops reading, drains every in-flight operation (failing
/// what cannot finish, with typed causes), sends the honest `Summary`
/// of everything actually delivered, and ends with
/// [`SessionEnd::Shutdown`].
///
/// # Errors
///
/// Returns the socket failure that ended the session, if any.
pub fn serve_session_until<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> io::Result<SessionEnd> {
    serve_connection(reader, writer, config, shutdown, &SessionRegistry::new())
}

/// What the serving loop pulled from the stream between frames.
enum Input {
    Frame(Frame),
    Shutdown,
    Idle,
}

/// Pulls the next frame, surfacing a shutdown request or an expired
/// idle deadline as typed inputs. A stream without a read timeout
/// simply blocks in `poll` until a frame arrives, so shutdown and idle
/// are only observed between frames there; the Unix-socket path sets
/// [`ServerConfig::read_timeout_ms`] to bound the latency.
fn next_input<R: Read>(
    reader: &mut R,
    frames: &mut FrameReader,
    shutdown: &AtomicBool,
    idle: Duration,
) -> Result<Input, ProtoError> {
    let since = Instant::now();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(Input::Shutdown);
        }
        if let Some(frame) = frames.poll(reader)? {
            return Ok(Input::Frame(frame));
        }
        if since.elapsed() >= idle {
            return Ok(Input::Idle);
        }
    }
}

/// [`next_input`] for the first frame of a connection, whose framing
/// (bare or CRC-trailed) is unknown until decoded; arms the reader's
/// CRC mode to match what arrived.
fn first_input<R: Read>(
    reader: &mut R,
    frames: &mut FrameReader,
    shutdown: &AtomicBool,
    idle: Duration,
) -> Result<Input, ProtoError> {
    let since = Instant::now();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(Input::Shutdown);
        }
        if let Some((frame, _crc)) = frames.poll_first(reader)? {
            return Ok(Input::Frame(frame));
        }
        if since.elapsed() >= idle {
            return Ok(Input::Idle);
        }
    }
}

/// Serves one *connection* against a shared [`SessionRegistry`]: a
/// `Hello` opens a fresh session; a `Resume` re-attaches a parked one.
/// This is the full v4-aware entry point the [`ReplayServer`] runs per
/// accepted socket — [`serve_session_until`] is this with a throwaway
/// registry (no cross-connection resume).
///
/// # Errors
///
/// Returns the socket failure that ended the session, if any; protocol
/// violations, disconnects, deadlines, and parking are reported in
/// [`SessionEnd`].
pub fn serve_connection<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    registry: &SessionRegistry,
) -> io::Result<SessionEnd> {
    serve_connection_inner(reader, writer, config, shutdown, registry, None)
}

/// [`serve_connection`] with an optional shared fleet: with
/// `Some(fleet)` the `Hello` acquires a tenant slot instead of building
/// a private pool, and substrate parameters (shards, capacity, refresh,
/// compute region) are fleet-wide — the client's requests for them are
/// ignored and the ack reports the fleet's shape (`tenants` = slot
/// count).
fn serve_connection_inner<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    registry: &SessionRegistry,
    fleet: Option<&FleetHandle>,
) -> io::Result<SessionEnd> {
    let mut frames = FrameReader::new();
    let idle = Duration::from_millis(config.session_idle_ms.max(1));
    let first = match first_input(reader, &mut frames, shutdown, idle) {
        Ok(Input::Frame(frame)) => frame,
        Ok(Input::Shutdown) => {
            send_error(
                writer,
                ErrorCode::Unavailable,
                "server is shutting down",
                frames.crc_enabled(),
            )?;
            return Ok(SessionEnd::Shutdown);
        }
        Ok(Input::Idle) => {
            send_error(
                writer,
                ErrorCode::Unavailable,
                "handshake idle deadline exceeded",
                frames.crc_enabled(),
            )?;
            return Ok(SessionEnd::Idle);
        }
        Err(ProtoError::Io(e)) => return io_end(e),
        Err(e) => {
            send_error(writer, ErrorCode::Malformed, &e.to_string(), false)?;
            return Ok(SessionEnd::Protocol(e));
        }
    };
    match first {
        Frame::Hello(hello) => {
            if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&hello.version) {
                let reason = format!(
                    "server speaks v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}, client sent v{}",
                    hello.version
                );
                send_error(writer, ErrorCode::Version, &reason, frames.crc_enabled())?;
                return Ok(SessionEnd::Rejected(reason));
            }
            // Oversized v5 resource claims are rejected here, before
            // anything is negotiated or allocated from their numbers.
            if hello.version >= 5
                && (hello.tenants > MAX_TENANT_CLAIM || hello.quota_ops > MAX_QUOTA_CLAIM)
            {
                let reason = format!(
                    "resource claim out of range: tenants {} (max {MAX_TENANT_CLAIM}), \
                     quota_ops {} (max {MAX_QUOTA_CLAIM})",
                    hello.tenants, hello.quota_ops
                );
                send_error(writer, ErrorCode::Policy, &reason, frames.crc_enabled())?;
                return Ok(SessionEnd::Rejected(reason));
            }
            let params = match fleet {
                // Fleet sessions share one substrate: its shape was
                // fixed at bind, so the client's substrate fields are
                // replaced by "server default" sentinels and the ack
                // reports the fleet's honest shape.
                Some(fleet) => {
                    let mut params = config.negotiate(&SessionParams {
                        shards: 0,
                        module_mib: 0,
                        refresh: 2,
                        compute_rows: 0,
                        ..hello
                    });
                    params.tenants = fleet.slots().min(usize::from(u16::MAX)) as u16;
                    params
                }
                None => config.negotiate(&hello),
            };
            // From here the framing follows the *negotiated version*,
            // whatever the Hello itself looked like: every frame of a
            // v4 session carries the CRC trailer, in both directions.
            let crc = params.version >= 4;
            frames.set_crc(crc);
            let engine = match fleet {
                Some(fleet) => match ReplayEngine::for_fleet(&params, fleet) {
                    Some(engine) => engine,
                    None => {
                        let reason =
                            format!("no free tenant slots (fleet serves {})", fleet.slots());
                        send_error(writer, ErrorCode::Unavailable, &reason, crc)?;
                        return Ok(SessionEnd::Rejected(reason));
                    }
                },
                None => ReplayEngine::with_options(
                    &params,
                    config.fault,
                    config.retry,
                    config.health,
                    config.workers,
                ),
            };
            let token = if crc { registry.mint_token() } else { 0 };
            write_frame_in(writer, &Frame::HelloAck { params, token }, crc)?;
            writer.flush()?;
            let session = SessionState::from_engine(params, token, config, engine);
            run_session(
                session,
                reader,
                writer,
                &mut frames,
                config,
                shutdown,
                registry,
            )
        }
        Frame::Resume(req) => {
            frames.set_crc(true);
            resume_session(req, reader, writer, &mut frames, config, shutdown, registry)
        }
        other => {
            let reason = format!("expected Hello or Resume, got {}", frame_name(&other));
            send_error(writer, ErrorCode::Malformed, &reason, frames.crc_enabled())?;
            Ok(SessionEnd::Rejected(reason))
        }
    }
}

/// Re-attaches a parked session to a fresh connection: validates the
/// token and the requested journal window, acks, re-emits the journal
/// tail, and hands control back to the serving loop (or re-delivers the
/// final `Summary` of an already-finished session).
fn resume_session<R: Read, W: Write>(
    req: proto::ResumeRequest,
    reader: &mut R,
    writer: &mut W,
    frames: &mut FrameReader,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    registry: &SessionRegistry,
) -> io::Result<SessionEnd> {
    if req.version < 4 {
        let reason = format!("resume requires protocol >= 4, got v{}", req.version);
        send_error(writer, ErrorCode::Version, &reason, true)?;
        return Ok(SessionEnd::Rejected(reason));
    }
    // Wait briefly for the previous connection's thread to notice the
    // cut and park the session — the reconnect usually wins that race.
    let grace = Duration::from_millis((config.read_timeout_ms.max(1) * 8).max(500));
    let Some(mut session) = registry.claim(req.token, grace) else {
        let reason = "unknown, expired, or still-active session token".to_string();
        send_error(writer, ErrorCode::Unavailable, &reason, true)?;
        return Ok(SessionEnd::Rejected(reason));
    };
    let (base, total) = session.tally.journal_window();
    if req.events_received > total || req.events_received < base {
        // The claim consumed the session: a client whose resume point
        // fell outside the bounded journal can never be made whole, so
        // the session — and its journal memory — is dropped here. The
        // window check is pure arithmetic on the already-bounded
        // journal; nothing is allocated from the request's numbers.
        let reason = format!(
            "resume point {} outside the retained journal window {base}..={total}",
            req.events_received
        );
        send_error(writer, ErrorCode::Unavailable, &reason, true)?;
        return Ok(SessionEnd::Rejected(reason));
    }
    let finished = session.finished;
    let ack = Frame::ResumeAck(ResumeAck {
        params: session.params,
        token: session.token,
        next_seq: session.engine.next_seq(),
        replay_events: total - req.events_received,
        finished: u8::from(finished.is_some()),
    });
    let handoff = (|| -> io::Result<()> {
        write_frame_in(writer, &ack, true)?;
        session.tally.replay_journal(writer, req.events_received)?;
        if let Some(summary) = finished {
            write_frame_in(writer, &Frame::Summary(summary), true)?;
        }
        writer.flush()
    })();
    if handoff.is_err() {
        // The replacement connection died too: park again for the next
        // attempt (the journal still covers everything unacknowledged).
        session.tally.reset_wire_state();
        registry.park(session);
        return Ok(SessionEnd::Suspended);
    }
    if finished.is_some() {
        // Keep the tombstone around until the reaper claims it, in case
        // this Summary is lost in a cut as well.
        registry.park(session);
        return Ok(SessionEnd::Bye);
    }
    run_session(session, reader, writer, frames, config, shutdown, registry)
}

/// Control flow out of one frame's handling.
enum Flow {
    Continue,
    End(SessionEnd),
}

/// The established-session serving loop, generic over how the session
/// started (fresh `Hello` or `Resume`). Owns the session state so a cut
/// can move it into the registry.
fn run_session<R: Read, W: Write>(
    mut session: SessionState,
    reader: &mut R,
    writer: &mut W,
    frames: &mut FrameReader,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    registry: &SessionRegistry,
) -> io::Result<SessionEnd> {
    let idle = Duration::from_millis(config.session_idle_ms.max(1));
    let crc = session.params.version >= 4;
    loop {
        match next_input(reader, frames, shutdown, idle) {
            Ok(Input::Frame(frame)) => match handle_frame(&mut session, frame, writer) {
                Ok(Flow::Continue) => {}
                Ok(Flow::End(end)) => {
                    if crc && matches!(end, SessionEnd::Bye) {
                        // Park the finished session as a tombstone: if
                        // the Summary was lost in a cut the client never
                        // saw, its Resume re-delivers journal + Summary.
                        session.tally.reset_wire_state();
                        registry.park(session);
                    }
                    return Ok(end);
                }
                // The write path died mid-emission: everything emitted
                // (and half-emitted) is already journaled, so park for
                // resume instead of losing the session.
                Err(_) if crc => {
                    session.tally.reset_wire_state();
                    registry.park(session);
                    return Ok(SessionEnd::Suspended);
                }
                Err(e) => return Err(e),
            },
            Ok(Input::Shutdown) => {
                // Graceful teardown: everything in flight is drained
                // (or failed, with a typed cause) and accounted, then
                // the client gets the honest totals of what the session
                // really delivered.
                let completions = session.engine.flush();
                session.tally.emit(writer, &completions)?;
                write_frame_in(writer, &Frame::Summary(session.tally.summary()), crc)?;
                writer.flush()?;
                return Ok(SessionEnd::Shutdown);
            }
            Ok(Input::Idle) => {
                // A silent client is torn down honestly — drained,
                // accounted, told why — and its memory (journal
                // included) freed. Best-effort writes: the peer may
                // already be gone, and the reap must happen regardless.
                let completions = session.engine.flush();
                let teardown = (|| -> io::Result<()> {
                    session.tally.emit(writer, &completions)?;
                    send_error(
                        writer,
                        ErrorCode::Unavailable,
                        &format!(
                            "session idle deadline ({} ms) exceeded",
                            config.session_idle_ms
                        ),
                        crc,
                    )?;
                    write_frame_in(writer, &Frame::Summary(session.tally.summary()), crc)?;
                    writer.flush()
                })();
                drop(teardown);
                return Ok(SessionEnd::Idle);
            }
            // A cut or corrupted stream parks a v4 session for resume —
            // *any* read failure, decode errors included: a corrupted
            // length prefix desynchronizes everything after it, so the
            // whole wire is untrustworthy while the session state is
            // still consistent. The client reconnects and resumes; a
            // client that never does is bounded by the idle reaper.
            // v2/v3 sessions keep the old teardown semantics.
            Err(_) if crc => {
                session.tally.reset_wire_state();
                registry.park(session);
                return Ok(SessionEnd::Suspended);
            }
            Err(ProtoError::Io(e)) => return io_end(e),
            Err(e) => {
                send_error(writer, ErrorCode::Malformed, &e.to_string(), crc)?;
                return Ok(SessionEnd::Protocol(e));
            }
        }
    }
}

/// Handles one in-session frame. Write errors bubble up so the caller
/// can park a v4 session instead of dropping it.
fn handle_frame<W: Write>(
    session: &mut SessionState,
    frame: Frame,
    writer: &mut W,
) -> io::Result<Flow> {
    let crc = session.params.version >= 4;
    match frame {
        Frame::Batch(ops) => {
            let seq_base = session.engine.next_seq();
            match session.engine.submit_batch(&ops) {
                Ok(completions) => {
                    session.tally.emit(writer, &completions)?;
                    write_frame_in(
                        writer,
                        &Frame::Batched(BatchAck {
                            seq_base,
                            accepted: ops.len() as u32,
                            emitted: completions.len() as u32,
                            outstanding: session.engine.outstanding() as u64,
                        }),
                        crc,
                    )?;
                    writer.flush()?;
                    if let Some(pause) = session.governor.on_rows(ops.len() as u64) {
                        thread::sleep(pause);
                    }
                }
                Err(CodicError::NoHealthyShards) => {
                    send_error(
                        writer,
                        ErrorCode::Unavailable,
                        &CodicError::NoHealthyShards.to_string(),
                        crc,
                    )?;
                }
                Err(policy) => {
                    send_error(writer, ErrorCode::Policy, &policy.to_string(), crc)?;
                }
            }
            Ok(Flow::Continue)
        }
        Frame::Flush => {
            let completions = session.engine.flush();
            session.tally.emit(writer, &completions)?;
            write_frame_in(
                writer,
                &Frame::Flushed(FlushAck {
                    emitted: completions.len() as u64,
                    now_max: session.engine.now_max(),
                }),
                crc,
            )?;
            writer.flush()?;
            Ok(Flow::Continue)
        }
        Frame::Bye => {
            let completions = session.engine.flush();
            session.tally.emit(writer, &completions)?;
            let summary = session.tally.summary();
            write_frame_in(writer, &Frame::Summary(summary), crc)?;
            writer.flush()?;
            // Marked finished only once the Summary writes cleanly: a
            // cut before that resumes into the normal loop, where the
            // client's re-sent Bye produces the identical Summary.
            session.finished = Some(summary);
            Ok(Flow::End(SessionEnd::Bye))
        }
        other => {
            let reason = format!("expected Batch/Flush/Bye, got {}", frame_name(&other));
            send_error(writer, ErrorCode::Malformed, &reason, crc)?;
            Ok(Flow::End(SessionEnd::Rejected(reason)))
        }
    }
}

/// The bounded v4 resume journal: the most recent event payloads of a
/// session, exactly as encoded (and checksummed) on first emission, so
/// a resumed connection can re-send the bytes an interrupted one lost.
///
/// Bounded by a byte cap: pushing past it evicts the oldest whole
/// events, sliding the retained window's base forward. A resume
/// pointing before the base is honestly rejected — nothing here ever
/// allocates from a client-supplied number.
#[derive(Debug)]
struct EventJournal {
    /// `(unit kind, payload bytes)` per event, oldest first.
    events: VecDeque<(u8, Box<[u8]>)>,
    /// Index of the oldest retained event in the session's full stream.
    base: u64,
    /// Retained payload bytes (plus one kind byte per event).
    bytes: usize,
    cap: usize,
}

impl EventJournal {
    fn new(cap: usize) -> Self {
        EventJournal {
            events: VecDeque::new(),
            base: 0,
            bytes: 0,
            cap: cap.max(1),
        }
    }

    fn push(&mut self, kind: u8, payload: &[u8]) {
        self.bytes += payload.len() + 1;
        self.events.push_back((kind, payload.into()));
        // Keep at least the newest event even if it alone exceeds the
        // cap: a journal that can't hold one event is useless.
        while self.bytes > self.cap && self.events.len() > 1 {
            let (_, old) = self.events.pop_front().expect("len > 1");
            self.bytes -= old.len() + 1;
            self.base += 1;
        }
    }

    /// The retained window as `(base, total)`: events `base..total` of
    /// the session's stream can be replayed; `total` is the count of
    /// all events ever emitted.
    fn window(&self) -> (u64, u64) {
        (self.base, self.base + self.events.len() as u64)
    }

    /// Events from stream index `from` (clamped to the base) onward.
    fn iter_from(&self, from: u64) -> impl Iterator<Item = (u8, &[u8])> {
        let skip = usize::try_from(from.saturating_sub(self.base)).unwrap_or(usize::MAX);
        self.events.iter().skip(skip).map(|(k, p)| (*k, p.as_ref()))
    }
}

/// Running totals and checksum of one session's completion stream.
#[derive(Debug, Default)]
struct SessionTally {
    checksum: Fnv64,
    payload: Vec<u8>,
    /// The reusable batched-emission buffer (v3 sessions only).
    events: EventBuffer,
    /// True once the session negotiated protocol ≥ 3: completions ship
    /// packed into `Events` frames instead of one frame per op.
    batched: bool,
    /// True once the session negotiated protocol ≥ 4: every emitted
    /// frame carries the CRC32C trailer.
    crc: bool,
    /// The v4 resume journal (`None` below v4).
    journal: Option<EventJournal>,
    ops: u64,
    row_ops: u64,
    failed: u64,
    max_finish_cycle: u64,
    total_energy_nj: f64,
}

impl SessionTally {
    /// A tally emitting in the negotiated version's transport: batched
    /// `Events` frames from v3 on, CRC-trailed and journaled for resume
    /// from v4 on, per-op frames for v2.
    fn for_params(params: &SessionParams, journal_max_bytes: usize) -> Self {
        let v4 = params.version >= 4;
        SessionTally {
            batched: params.version >= 3,
            crc: v4,
            journal: v4.then(|| EventJournal::new(journal_max_bytes)),
            ..SessionTally::default()
        }
    }

    /// Streams `completions` — batched into `Events` frames (v3) or as
    /// per-op `Completion` / `Failed` frames (v2) — folding each
    /// *payload* into the totals and the session checksum. The hashed
    /// bytes are identical in both transports, so the checksum is
    /// framing-independent. Successes count toward `ops`/`row_ops`/
    /// energy; failures only toward `failed` — the `Summary` reports
    /// what the session really delivered, not what it attempted.
    fn emit<W: Write>(
        &mut self,
        writer: &mut W,
        completions: &[ReplayCompletion],
    ) -> io::Result<()> {
        for c in completions {
            if self.batched && self.events.is_full() {
                self.flush_events(writer)?;
            }
            if let Some(failure) = c.to_wire_failure() {
                self.failed += 1;
                self.max_finish_cycle = self.max_finish_cycle.max(failure.at_cycle);
                if self.batched {
                    let payload = self.events.push_failure(&failure);
                    self.checksum.update(payload);
                    if let Some(journal) = self.journal.as_mut() {
                        journal.push(proto::EVENT_FAILURE, payload);
                    }
                } else {
                    self.payload.clear();
                    proto::failure_payload(&failure, &mut self.payload);
                    self.checksum.update(&self.payload);
                    write_frame_in(writer, &Frame::Failed(failure), false)?;
                }
                continue;
            }
            let wire = c.to_wire();
            self.ops += 1;
            self.row_ops += u64::from(wire.op.row_op_kind().is_some());
            self.max_finish_cycle = self.max_finish_cycle.max(wire.finish_cycle);
            self.total_energy_nj += wire.energy_nj;
            if self.batched {
                // Encode once into the reusable buffer: the returned
                // slice is both the checksummed and the sent bytes —
                // and, on v4, the journaled bytes a resume replays.
                let payload = self.events.push_completion(&wire);
                self.checksum.update(payload);
                if let Some(journal) = self.journal.as_mut() {
                    journal.push(proto::EVENT_COMPLETION, payload);
                }
            } else {
                self.payload.clear();
                proto::completion_payload(&wire, &mut self.payload);
                self.checksum.update(&self.payload);
                // Encode once: the checksummed bytes are the sent bytes.
                proto::write_completion_frame(writer, &self.payload)?;
            }
        }
        // The whole run ships before the caller's ack frame, so frame
        // order on the wire mirrors the unbatched emission order.
        self.flush_events(writer)?;
        Ok(())
    }

    /// Flushes the batched-emission buffer in the session's framing.
    fn flush_events<W: Write>(&mut self, writer: &mut W) -> io::Result<()> {
        if self.crc {
            self.events.flush_to_crc(writer)
        } else {
            self.events.flush_to(writer)
        }
    }

    /// The journal's retained window (`(0, 0)` below v4).
    fn journal_window(&self) -> (u64, u64) {
        self.journal.as_ref().map_or((0, 0), EventJournal::window)
    }

    /// Re-emits journaled events from stream index `from` onward as
    /// CRC-framed `Events` frames — byte-identical payloads to their
    /// first emission, so the client-side checksum can't tell a resumed
    /// stream from an uninterrupted one.
    fn replay_journal<W: Write>(&self, writer: &mut W, from: u64) -> io::Result<()> {
        let Some(journal) = self.journal.as_ref() else {
            return Ok(());
        };
        // Replay frames are deliberately small: a resuming client must
        // be able to absorb at least one whole frame per connection to
        // make forward progress, even over a wire that keeps dying.
        // Packing the tail into one maximal frame would livelock resume
        // whenever that frame outlives every connection attempt.
        const REPLAY_FRAME_BYTES: usize = 8 << 10;
        let mut buffer = EventBuffer::new();
        for (kind, payload) in journal.iter_from(from) {
            if buffer.byte_len() >= REPLAY_FRAME_BYTES {
                buffer.flush_to_crc(writer)?;
            }
            buffer.push_raw(kind, payload);
        }
        buffer.flush_to_crc(writer)
    }

    /// Drops any half-flushed emission buffer before parking: its units
    /// are already journaled and checksummed, and the next connection
    /// re-emits them from the journal.
    fn reset_wire_state(&mut self) {
        self.events = EventBuffer::new();
    }

    fn summary(&self) -> Summary {
        Summary {
            ops: self.ops,
            row_ops: self.row_ops,
            failed: self.failed,
            max_finish_cycle: self.max_finish_cycle,
            total_energy_nj: self.total_energy_nj,
            checksum: self.checksum.value(),
        }
    }
}

fn io_end(e: io::Error) -> io::Result<SessionEnd> {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        Ok(SessionEnd::Disconnected)
    } else {
        Ok(SessionEnd::Io(e))
    }
}

/// The frame's name, for diagnostics (a `Batch`'s debug form would dump
/// the whole operation vector).
fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello(_) => "Hello",
        Frame::HelloAck { .. } => "HelloAck",
        Frame::Batch(_) => "Batch",
        Frame::Flush => "Flush",
        Frame::Bye => "Bye",
        Frame::Resume(_) => "Resume",
        Frame::ResumeAck(_) => "ResumeAck",
        Frame::Completion(_) => "Completion",
        Frame::Failed(_) => "Failed",
        Frame::Batched(_) => "Batched",
        Frame::Flushed(_) => "Flushed",
        Frame::Summary(_) => "Summary",
        Frame::Error { .. } => "Error",
        Frame::Events(_) => "Events",
    }
}

fn send_error<W: Write>(
    writer: &mut W,
    code: ErrorCode,
    detail: &str,
    crc: bool,
) -> io::Result<()> {
    write_frame_in(
        writer,
        &Frame::Error {
            code,
            detail: detail.to_string(),
        },
        crc,
    )?;
    writer.flush()
}

/// A cloneable handle that requests a [`ReplayServer`]'s graceful
/// shutdown: the accept loop stops taking new connections and every
/// live session drains its in-flight operations and sends an honest
/// `Summary` before closing.
#[derive(Debug, Clone, Default)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown (idempotent).
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// One bound accept endpoint: the filesystem Unix socket or a TCP
/// listener. Both feed the same accept loop and speak the same
/// protocol, frame for frame.
#[derive(Debug)]
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<ServerStream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| ServerStream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Frames are already written through a BufWriter and
                // flushed at ack boundaries; Nagle would only add
                // latency on top of that.
                let _ = s.set_nodelay(true);
                ServerStream::Tcp(s)
            }),
        }
    }
}

/// An accepted connection with the transport erased: the session thread
/// reads and writes it identically over Unix and TCP sockets.
#[derive(Debug)]
enum ServerStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl ServerStream {
    fn try_clone(&self) -> io::Result<ServerStream> {
        match self {
            ServerStream::Unix(s) => s.try_clone().map(ServerStream::Unix),
            ServerStream::Tcp(s) => s.try_clone().map(ServerStream::Tcp),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            ServerStream::Unix(s) => s.set_nonblocking(nonblocking),
            ServerStream::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            ServerStream::Unix(s) => s.set_read_timeout(timeout),
            ServerStream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for ServerStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ServerStream::Unix(s) => s.read(buf),
            ServerStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ServerStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ServerStream::Unix(s) => s.write(buf),
            ServerStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ServerStream::Unix(s) => s.flush(),
            ServerStream::Tcp(s) => s.flush(),
        }
    }
}

/// The replay server.
///
/// Binds a filesystem Unix socket ([`ReplayServer::bind`]), a TCP
/// address ([`ReplayServer::bind_tcp`]), or both
/// ([`ReplayServer::with_tcp`]), then serves each accepted connection —
/// whichever transport it arrived on — as an independent session on its
/// own thread. The socket file, when there is one, is removed on drop.
#[derive(Debug)]
pub struct ReplayServer {
    listeners: Vec<Listener>,
    config: ServerConfig,
    path: Option<PathBuf>,
    shutdown: ShutdownHandle,
    /// Shared across every connection thread: where cut v4 sessions
    /// park for resume, reaped on the idle deadline by the accept loop.
    registry: Arc<SessionRegistry>,
    /// The shared tenant fleet ([`ServerConfig::fleet_slots`] > 0):
    /// built once at bind, leased per session.
    fleet: Option<FleetHandle>,
}

impl ReplayServer {
    /// Binds `path`, reclaiming a *stale* socket file (one left behind
    /// by a dead server) but refusing to hijack a live endpoint: if a
    /// peer still accepts connections on `path`, this fails with
    /// [`io::ErrorKind::AddrInUse`] instead of silently unlinking the
    /// running server's socket.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; [`io::ErrorKind::AddrInUse`] when a
    /// live server already serves `path`.
    pub fn bind<P: AsRef<Path>>(path: P, config: ServerConfig) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        match UnixStream::connect(&path) {
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{} is served by a live replay server", path.display()),
                ))
            }
            // No socket file at all: nothing to reclaim.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            // A socket file nobody accepts on: a dead server's leftover.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                std::fs::remove_file(&path)?;
            }
            // Anything else (not a socket, no permission, …): leave the
            // path alone and let bind() report the real conflict.
            Err(_) => {}
        }
        let listener = UnixListener::bind(&path)?;
        ReplayServer::build(vec![Listener::Unix(listener)], Some(path), config)
    }

    /// Binds a TCP address (e.g. `127.0.0.1:0` for an ephemeral test
    /// port) instead of a Unix socket; the protocol is identical over
    /// both.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_tcp<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        ReplayServer::build(vec![Listener::Tcp(listener)], None, config)
    }

    /// Adds a TCP listener beside this server's existing endpoints: the
    /// accept loop serves both, and a session is the same session
    /// whichever transport carried it (a session cut on one listener
    /// can even resume through the other).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn with_tcp<A: ToSocketAddrs>(mut self, addr: A) -> io::Result<Self> {
        self.listeners.push(Listener::Tcp(TcpListener::bind(addr)?));
        Ok(self)
    }

    /// The local address of the first TCP listener, when one is bound
    /// (tests bind `127.0.0.1:0` and read the ephemeral port here).
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.listeners.iter().find_map(|l| match l {
            Listener::Tcp(listener) => listener.local_addr().ok(),
            Listener::Unix(_) => None,
        })
    }

    /// Assembles the server, building the shared fleet when
    /// [`ServerConfig::fleet_slots`] asks for one: `fleet_slots` leases
    /// of the configured shard count, on the substrate the server's
    /// defaults negotiate (fault plan and retry policy included), with
    /// the server's outstanding cap as the default per-tenant quota.
    fn build(
        listeners: Vec<Listener>,
        path: Option<PathBuf>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let fleet = match config.fleet_slots {
            0 => None,
            slots => {
                if config.workers {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "fleet mode serves sessions from one shared pool; \
                         it cannot be combined with per-shard workers",
                    ));
                }
                let params = config.negotiate(&SessionParams::defaults());
                let mut device = ServerConfig::device_config(&params).with_retry(config.retry);
                if let Some(plan) = config.fault {
                    device = device.with_faults(plan);
                }
                Some(FleetHandle::new(
                    FleetConfig::new(slots, (params.shards as usize).max(1), device)
                        .with_quota(config.max_outstanding.max(1))
                        .with_health(config.health),
                ))
            }
        };
        Ok(ReplayServer {
            listeners,
            config,
            path,
            shutdown: ShutdownHandle::default(),
            registry: Arc::new(SessionRegistry::new()),
            fleet,
        })
    }

    /// Sessions currently parked for resume (cut mid-stream, client not
    /// yet back). Parked sessions are reaped — journal freed — once
    /// they sit unclaimed past [`ServerConfig::session_idle_ms`].
    #[must_use]
    pub fn parked_sessions(&self) -> usize {
        self.registry.parked_sessions()
    }

    /// The bound Unix-socket path, when this server has one
    /// (TCP-only servers don't).
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Free tenant slots on the shared fleet; `None` when this server
    /// runs private pools ([`ServerConfig::fleet_slots`] = 0).
    #[must_use]
    pub fn free_tenant_slots(&self) -> Option<usize> {
        self.fleet.as_ref().map(FleetHandle::free_slots)
    }

    /// A handle that stops this server gracefully from another thread:
    /// the accept loop exits and every live session drains its pool and
    /// sends an honest `Summary` before closing.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Serves exactly `connections` sessions (each on its own thread),
    /// then returns. `replay-server --connections N` and every test use
    /// this; [`ReplayServer::serve_forever`] is the daemon mode. Returns
    /// early — after joining live sessions — when the
    /// [`ShutdownHandle`] fires.
    ///
    /// # Errors
    ///
    /// Propagates an accept failure.
    pub fn serve_connections(&self, connections: usize) -> io::Result<()> {
        self.accept_loop(Some(connections))
    }

    /// Accepts and serves sessions until the [`ShutdownHandle`] fires
    /// (joining live sessions before returning) or the process exits.
    ///
    /// # Errors
    ///
    /// Propagates an accept failure.
    pub fn serve_forever(&self) -> io::Result<()> {
        self.accept_loop(None)
    }

    /// The shutdown-aware accept loop: non-blocking accepts polled at a
    /// small interval, so a shutdown request is noticed within ~10 ms
    /// even while no client is connecting.
    fn accept_loop(&self, connections: Option<usize>) -> io::Result<()> {
        for listener in &self.listeners {
            listener.set_nonblocking(true)?;
        }
        let idle = Duration::from_millis(self.config.session_idle_ms.max(1));
        let mut handles = Vec::new();
        let mut accepted = 0usize;
        'accept: while connections.is_none_or(|n| accepted < n) {
            if self.shutdown.is_shutdown() {
                break;
            }
            // Poll every listener once; a fully quiet round doubles as
            // the reaper's tick: parked sessions nobody resumed past
            // the idle deadline are dropped and their journals freed.
            let mut quiet = true;
            for listener in &self.listeners {
                if connections.is_some_and(|n| accepted >= n) {
                    break 'accept;
                }
                match listener.accept() {
                    Ok(stream) => {
                        handles.push(self.spawn_session(stream));
                        accepted += 1;
                        quiet = false;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            if quiet {
                self.registry.reap_idle(idle);
                thread::sleep(Duration::from_millis(5));
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }

    fn spawn_session(&self, stream: ServerStream) -> thread::JoinHandle<()> {
        let config = self.config.clone();
        let shutdown = self.shutdown.clone();
        let registry = Arc::clone(&self.registry);
        let fleet = self.fleet.clone();
        thread::spawn(move || {
            // Accepted sockets are blocking with a read timeout: the
            // session loop parks in the frame reader for at most this
            // long before it re-checks the shutdown flag and the idle
            // deadline.
            let _ = stream.set_nonblocking(false);
            let _ =
                stream.set_read_timeout(Some(Duration::from_millis(config.read_timeout_ms.max(1))));
            let reader = stream.try_clone();
            let Ok(read_half) = reader else { return };
            let mut reader = BufReader::new(read_half);
            let mut writer = BufWriter::new(stream);
            let _ = serve_connection_inner(
                &mut reader,
                &mut writer,
                &config,
                &shutdown.0,
                &registry,
                fleet.as_ref(),
            );
        })
    }
}

impl Drop for ReplayServer {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::write_frame;
    use codic_core::ops::VariantId;

    fn params(max_outstanding: u32) -> SessionParams {
        SessionParams {
            version: PROTOCOL_VERSION,
            shards: 2,
            module_mib: 64,
            max_outstanding,
            target_rows_per_s: 0,
            refresh: 0,
            compute_rows: 0,
            qos_weight: 1,
            tenants: 0,
            quota_ops: max_outstanding,
        }
    }

    fn zero_ops(rows: u64) -> Vec<CodicOp> {
        (0..rows)
            .map(|i| CodicOp::command(VariantId::DetZero, i * DramGeometry::ROW_BYTES))
            .collect()
    }

    #[test]
    fn negotiation_applies_defaults_and_caps() {
        let config = ServerConfig::default();
        let effective = config.negotiate(&SessionParams::defaults());
        assert_eq!(effective.shards, 4);
        assert_eq!(effective.module_mib, 64);
        assert_eq!(effective.max_outstanding, 1024);
        assert_eq!(effective.target_rows_per_s, 0);
        assert_eq!(effective.refresh, 0);

        // A client can lower but not raise the outstanding cap, and the
        // rate target combines as a minimum.
        let server = ServerConfig {
            target_rows_per_s: 1_000,
            ..ServerConfig::default()
        };
        let aggressive = SessionParams {
            version: PROTOCOL_VERSION,
            shards: 200,
            module_mib: 100,
            max_outstanding: 1 << 30,
            target_rows_per_s: 5_000,
            refresh: 1,
            compute_rows: u32::MAX,
            qos_weight: 200,
            tenants: 0,
            quota_ops: 0,
        };
        let effective = server.negotiate(&aggressive);
        assert_eq!(effective.shards, 64, "shards are capped");
        assert_eq!(
            effective.module_mib, 128,
            "capacity rounds to a power of two"
        );
        assert_eq!(
            effective.max_outstanding, 1024,
            "cannot exceed the server cap"
        );
        assert_eq!(
            effective.target_rows_per_s, 1_000,
            "rate caps combine as min"
        );
        assert_eq!(effective.refresh, 1);
        assert_eq!(
            u64::from(effective.compute_rows),
            DramGeometry::module_mib(128).total_rows(),
            "compute region is clamped to the module"
        );

        // A server-side default region applies when the client defers.
        let server = ServerConfig {
            compute_rows: 64,
            ..ServerConfig::default()
        };
        let effective = server.negotiate(&SessionParams::defaults());
        assert_eq!(effective.compute_rows, 64);
    }

    #[test]
    fn engine_completions_match_the_direct_async_run_bit_for_bit() {
        let params = params(1024);
        let ops = zero_ops(300);
        let batches: Vec<&[CodicOp]> = ops.chunks(64).collect();

        // Served discipline.
        let mut engine = ReplayEngine::new(&params);
        let mut served = Vec::new();
        for batch in &batches {
            served.extend(engine.submit_batch(batch).unwrap());
        }
        served.extend(engine.flush());
        assert_eq!(served.len(), ops.len());

        // Direct run: same batches through bare submit_all_async, one
        // drive at the end.
        let config = ServerConfig::device_config(&params);
        let mut pool = DevicePool::new(params.shards as usize, &config);
        let mut futures = Vec::new();
        for batch in &batches {
            futures.extend(pool.submit_all_async(batch).unwrap());
        }
        pool.drive();
        let direct: Vec<_> = futures
            .iter_mut()
            .map(|f| f.try_take().expect("driven to idle"))
            .collect();

        for (i, c) in direct.iter().enumerate() {
            let served = served
                .iter()
                .find(|r| r.seq == i as u64)
                .expect("every op completes once");
            assert_eq!(served.completion.op, c.op);
            assert_eq!(served.completion.finish_cycle, c.finish_cycle, "op {i}");
            assert_eq!(
                served.completion.cost.energy_nj.to_bits(),
                c.cost.energy_nj.to_bits(),
                "op {i}"
            );
        }
    }

    #[test]
    fn drained_completions_arrive_in_completion_order() {
        let params = params(1024);
        let mut engine = ReplayEngine::new(&params);
        let mut all = Vec::new();
        for batch in zero_ops(500).chunks(128) {
            all.extend(engine.submit_batch(batch).unwrap());
        }
        all.extend(engine.flush());
        // Per shard, finish cycles never go backwards; within a drain,
        // ties break by sequence.
        for shard in 0..params.shards {
            let cycles: Vec<u64> = all
                .iter()
                .filter(|r| r.shard == shard)
                .map(|r| r.completion.finish_cycle)
                .collect();
            assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "shard {shard}");
            assert!(!cycles.is_empty());
        }
    }

    #[test]
    fn tiny_outstanding_bound_is_enforced_between_batches() {
        let tiny = params(8);
        let mut engine = ReplayEngine::new(&tiny);
        for batch in zero_ops(256).chunks(32) {
            engine.submit_batch(batch).unwrap();
            assert!(
                engine.outstanding() <= 8,
                "backpressure must hold the window at 8, got {}",
                engine.outstanding()
            );
        }
        let rest = engine.flush();
        assert!(engine.outstanding() == 0 && !rest.is_empty());
    }

    #[test]
    fn bind_reclaims_stale_sockets_but_never_hijacks_live_ones() {
        let path = std::env::temp_dir().join(format!("codic-bind-{}.sock", std::process::id()));
        // A live server on the path: a second bind must refuse.
        let live = ReplayServer::bind(&path, ServerConfig::default()).expect("first bind");
        let err = ReplayServer::bind(&path, ServerConfig::default())
            .expect_err("must not hijack a live endpoint");
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        drop(live); // removes the socket file
                    // A stale socket file (dead listener, file left behind): reclaim.
        let dead = std::os::unix::net::UnixListener::bind(&path).expect("raw bind");
        drop(dead); // the raw listener does NOT unlink its file
        assert!(path.exists(), "stale socket file left behind");
        let reclaimed =
            ReplayServer::bind(&path, ServerConfig::default()).expect("stale socket is reclaimed");
        drop(reclaimed);
        assert!(!path.exists());
    }

    /// Runs the full batch/flush discipline through an engine and
    /// returns every completion in emission order.
    fn run_engine(engine: &mut ReplayEngine, ops: &[CodicOp]) -> Vec<ReplayCompletion> {
        let mut all = Vec::new();
        for batch in ops.chunks(64) {
            all.extend(engine.submit_batch(batch).unwrap());
        }
        all.extend(engine.flush());
        all
    }

    #[test]
    fn worker_engine_matches_inline_engine_bit_for_bit() {
        // Including a tiny outstanding bound, so the lockstep
        // backpressure loop actually fires in both modes.
        for max_outstanding in [1024, 8] {
            let params = params(max_outstanding);
            let ops = zero_ops(300);
            let mut inline = ReplayEngine::new(&params);
            let mut workers = ReplayEngine::with_options(
                &params,
                None,
                RetryPolicy::default(),
                HealthPolicy::default(),
                true,
            );
            let a = run_engine(&mut inline, &ops);
            let b = run_engine(&mut workers, &ops);
            assert_eq!(a, b, "max_outstanding {max_outstanding}");
        }
    }

    #[test]
    fn worker_engine_matches_inline_under_misfire_faults() {
        let params = params(64);
        let fault = Some(FaultPlan::new(11).with_misfires(500));
        let retry = RetryPolicy::default();
        let health = HealthPolicy::default();
        let ops = zero_ops(400);
        let mut inline = ReplayEngine::with_options(&params, fault, retry, health, false);
        let mut workers = ReplayEngine::with_options(&params, fault, retry, health, true);
        let a = run_engine(&mut inline, &ops);
        let b = run_engine(&mut workers, &ops);
        assert_eq!(a, b);
    }

    /// Serves one in-memory session at `version` and returns the server's
    /// reply frames.
    fn run_session(version: u16, config: &ServerConfig) -> Vec<Frame> {
        let hello = SessionParams {
            version,
            ..SessionParams::defaults()
        };
        let mut input = Vec::new();
        write_frame(&mut input, &Frame::Hello(hello)).unwrap();
        for batch in zero_ops(300).chunks(64) {
            write_frame(&mut input, &Frame::Batch(batch.to_vec())).unwrap();
        }
        write_frame(&mut input, &Frame::Bye).unwrap();
        let mut output = Vec::new();
        let end = serve_session(&mut input.as_slice(), &mut output, config).unwrap();
        assert!(matches!(end, SessionEnd::Bye), "session end: {end:?}");
        let mut frames = Vec::new();
        let mut rest = output.as_slice();
        while !rest.is_empty() {
            frames.push(proto::read_frame(&mut rest).unwrap());
        }
        frames
    }

    /// The payload units of a reply stream, flattened across transports.
    fn stream_shape(frames: &[Frame]) -> (u64, u64, u64, usize, usize) {
        let (mut completions, mut failures, mut events_frames, mut bare) = (0u64, 0u64, 0, 0);
        let mut summary_checksum = 0u64;
        for frame in frames {
            match frame {
                Frame::Events(events) => {
                    events_frames += 1;
                    for e in events {
                        match e {
                            proto::SessionEvent::Completion(_) => completions += 1,
                            proto::SessionEvent::Failure(_) => failures += 1,
                        }
                    }
                }
                Frame::Completion(_) => {
                    bare += 1;
                    completions += 1;
                }
                Frame::Failed(_) => {
                    bare += 1;
                    failures += 1;
                }
                Frame::Summary(s) => summary_checksum = s.checksum,
                _ => {}
            }
        }
        (completions, failures, summary_checksum, events_frames, bare)
    }

    #[test]
    fn v3_sessions_batch_v2_sessions_interoperate_and_checksums_agree() {
        let config = ServerConfig::default();
        let v3 = run_session(3, &config);
        let v2 = run_session(2, &config);
        let (ops3, failed3, sum3, events3, bare3) = stream_shape(&v3);
        let (ops2, failed2, sum2, events2, bare2) = stream_shape(&v2);
        assert_eq!(ops3, 300);
        assert_eq!(ops2, 300);
        assert_eq!(failed3 + failed2, 0);
        assert!(events3 > 0, "v3 streams batched Events frames");
        assert_eq!(bare3, 0, "v3 sends no per-op frames");
        assert_eq!(events2, 0, "v2 never sees an Events frame");
        assert_eq!(bare2, 300, "v2 gets one frame per op");
        assert_eq!(sum3, sum2, "the session checksum is framing-independent");
        // The ack echoes the negotiated version.
        assert!(matches!(v3[0], Frame::HelloAck { params: p, .. } if p.version == 3));
        assert!(matches!(v2[0], Frame::HelloAck { params: p, .. } if p.version == 2));
        // Below v4 there is no resume protocol, so no token is minted.
        assert!(matches!(v3[0], Frame::HelloAck { token: 0, .. }));
        // Worker mode changes neither the stream shape nor the checksum.
        let piped = ServerConfig {
            workers: true,
            ..ServerConfig::default()
        };
        let v3w = run_session(3, &piped);
        assert_eq!(stream_shape(&v3w).2, sum3);
    }

    #[test]
    fn out_of_range_versions_are_rejected() {
        let config = ServerConfig::default();
        for version in [0u16, 1, 6, u16::MAX] {
            let hello = SessionParams {
                version,
                ..SessionParams::defaults()
            };
            let mut input = Vec::new();
            write_frame(&mut input, &Frame::Hello(hello)).unwrap();
            let mut output = Vec::new();
            let end = serve_session(&mut input.as_slice(), &mut output, &config).unwrap();
            assert!(
                matches!(end, SessionEnd::Rejected(_)),
                "v{version}: {end:?}"
            );
            let reply = proto::read_frame(&mut output.as_slice()).unwrap();
            assert!(
                matches!(
                    reply,
                    Frame::Error {
                        code: ErrorCode::Version,
                        ..
                    }
                ),
                "v{version}: {reply:?}"
            );
        }
    }

    /// Encodes `frames` exactly as a v4 client sends them: CRC-trailed.
    fn crc_input(frames: &[Frame]) -> Vec<u8> {
        let mut input = Vec::new();
        for frame in frames {
            proto::write_frame_crc(&mut input, frame).unwrap();
        }
        input
    }

    /// Decodes every CRC-framed reply in `output`.
    fn crc_frames(mut output: &[u8]) -> Vec<Frame> {
        let mut frames = Vec::new();
        while !output.is_empty() {
            frames.push(proto::read_frame_crc(&mut output).unwrap());
        }
        frames
    }

    /// Flattens a reply stream into its event units, delivery order.
    fn event_units(frames: &[Frame]) -> Vec<proto::SessionEvent> {
        let mut units = Vec::new();
        for frame in frames {
            match frame {
                Frame::Events(events) => units.extend(events.iter().copied()),
                Frame::Completion(c) => units.push(proto::SessionEvent::Completion(*c)),
                Frame::Failed(f) => units.push(proto::SessionEvent::Failure(*f)),
                _ => {}
            }
        }
        units
    }

    /// The stream's final `Summary`, which every complete session sends.
    fn summary_of(frames: &[Frame]) -> Summary {
        frames
            .iter()
            .find_map(|f| match f {
                Frame::Summary(s) => Some(*s),
                _ => None,
            })
            .expect("stream carries a Summary")
    }

    #[test]
    fn v4_cut_sessions_park_and_resume_into_a_bit_identical_stream() {
        let config = ServerConfig::default();
        let ops = zero_ops(300);
        let shutdown = AtomicBool::new(false);

        // The uninterrupted reference: one connection, all batches.
        let mut clean_session = vec![Frame::Hello(SessionParams::defaults())];
        for chunk in ops.chunks(64) {
            clean_session.push(Frame::Batch(chunk.to_vec()));
        }
        clean_session.push(Frame::Bye);
        let input = crc_input(&clean_session);
        let mut output = Vec::new();
        let registry = SessionRegistry::new();
        let end = serve_connection(
            &mut input.as_slice(),
            &mut output,
            &config,
            &shutdown,
            &registry,
        )
        .unwrap();
        assert!(matches!(end, SessionEnd::Bye), "clean run: {end:?}");
        let clean = crc_frames(&output);
        let clean_units = event_units(&clean);
        let clean_summary = summary_of(&clean);
        assert_eq!(clean_units.len(), 300);

        // The interrupted run: three whole batches arrive, then the
        // stream dies mid-way through the fourth batch's frame.
        let registry = SessionRegistry::new();
        let mut first = vec![Frame::Hello(SessionParams::defaults())];
        for chunk in ops.chunks(64).take(3) {
            first.push(Frame::Batch(chunk.to_vec()));
        }
        let mut input = crc_input(&first);
        let cut_frame = crc_input(&[Frame::Batch(ops[192..256].to_vec())]);
        input.extend_from_slice(&cut_frame[..cut_frame.len() / 2]);
        let mut output1 = Vec::new();
        let end = serve_connection(
            &mut input.as_slice(),
            &mut output1,
            &config,
            &shutdown,
            &registry,
        )
        .unwrap();
        assert!(matches!(end, SessionEnd::Suspended), "cut parks: {end:?}");
        assert_eq!(registry.parked_sessions(), 1);
        let conn1 = crc_frames(&output1);
        let token = match conn1[0] {
            Frame::HelloAck { token, .. } => token,
            ref other => panic!("expected HelloAck, got {other:?}"),
        };
        assert_ne!(token, 0, "v4 sessions always get a resume token");
        let delivered = event_units(&conn1);
        // Pretend the cut also ate the tail of what the server sent:
        // the client resumes from what it actually absorbed.
        let absorbed = delivered.len().saturating_sub(3);

        // The resumed connection: Resume, the remaining batches, Bye.
        let mut second = vec![Frame::Resume(proto::ResumeRequest {
            version: 4,
            token,
            events_received: absorbed as u64,
        })];
        for chunk in ops[192..].chunks(64) {
            second.push(Frame::Batch(chunk.to_vec()));
        }
        second.push(Frame::Bye);
        let input = crc_input(&second);
        let mut output2 = Vec::new();
        let end = serve_connection(
            &mut input.as_slice(),
            &mut output2,
            &config,
            &shutdown,
            &registry,
        )
        .unwrap();
        assert!(matches!(end, SessionEnd::Bye), "resumed run: {end:?}");
        let conn2 = crc_frames(&output2);
        let ack = match &conn2[0] {
            Frame::ResumeAck(ack) => *ack,
            other => panic!("expected ResumeAck, got {other:?}"),
        };
        assert_eq!(ack.token, token);
        assert_eq!(
            ack.next_seq, 192,
            "batches are accepted whole, so the resume point is batch-aligned"
        );
        assert_eq!(ack.replay_events, (delivered.len() - absorbed) as u64);
        assert_eq!(ack.finished, 0);

        // The client-visible stream — what connection 1 delivered
        // (minus the lost tail) plus everything connection 2 sent — is
        // the clean run's stream, unit for unit, and the Summary (the
        // server-side checksum included) is bit-identical.
        let mut combined = delivered[..absorbed].to_vec();
        combined.extend(event_units(&conn2));
        assert_eq!(combined, clean_units, "resume is invisible in the stream");
        let resumed_summary = summary_of(&conn2);
        assert_eq!(resumed_summary, clean_summary);
        assert_eq!(resumed_summary.checksum, clean_summary.checksum);

        // The clean Bye parked a finished tombstone for lost-Summary
        // recovery; the reaper bounds its lifetime.
        assert_eq!(registry.parked_sessions(), 1);
    }

    #[test]
    fn finished_v4_sessions_leave_a_tombstone_that_redelivers_the_summary() {
        let config = ServerConfig::default();
        let ops = zero_ops(64);
        let shutdown = AtomicBool::new(false);
        let registry = SessionRegistry::new();
        let session = vec![
            Frame::Hello(SessionParams::defaults()),
            Frame::Batch(ops.clone()),
            Frame::Bye,
        ];
        let input = crc_input(&session);
        let mut output = Vec::new();
        serve_connection(
            &mut input.as_slice(),
            &mut output,
            &config,
            &shutdown,
            &registry,
        )
        .unwrap();
        let clean = crc_frames(&output);
        let token = match clean[0] {
            Frame::HelloAck { token, .. } => token,
            ref other => panic!("expected HelloAck, got {other:?}"),
        };
        let summary = summary_of(&clean);
        let total = event_units(&clean).len() as u64;
        assert_eq!(registry.parked_sessions(), 1, "Bye parks a tombstone");

        // The client never saw that Summary: its resume re-delivers it
        // (and nothing else — every event was already absorbed).
        let input = crc_input(&[Frame::Resume(proto::ResumeRequest {
            version: 4,
            token,
            events_received: total,
        })]);
        let mut output = Vec::new();
        let end = serve_connection(
            &mut input.as_slice(),
            &mut output,
            &config,
            &shutdown,
            &registry,
        )
        .unwrap();
        assert!(matches!(end, SessionEnd::Bye), "redelivery: {end:?}");
        let redelivered = crc_frames(&output);
        match &redelivered[0] {
            Frame::ResumeAck(ack) => {
                assert_eq!(ack.finished, 1);
                assert_eq!(ack.replay_events, 0);
            }
            other => panic!("expected ResumeAck, got {other:?}"),
        }
        assert!(event_units(&redelivered).is_empty());
        assert_eq!(summary_of(&redelivered), summary);
        // The tombstone is re-parked in case this Summary is lost too.
        assert_eq!(registry.parked_sessions(), 1);
        assert_eq!(registry.reap_idle(Duration::ZERO), 1, "the reaper frees it");
        assert_eq!(registry.parked_sessions(), 0);
    }

    /// Parks one cut v4 session and returns `(registry, token, events
    /// delivered before the cut)`.
    fn park_cut_session(config: &ServerConfig) -> (SessionRegistry, u64, u64) {
        let ops = zero_ops(128);
        let shutdown = AtomicBool::new(false);
        let registry = SessionRegistry::new();
        let mut input = crc_input(&[
            Frame::Hello(SessionParams::defaults()),
            Frame::Batch(ops[..64].to_vec()),
            Frame::Flush,
        ]);
        input.extend_from_slice(&crc_input(&[Frame::Batch(ops[64..].to_vec())])[..20]);
        let mut output = Vec::new();
        let end = serve_connection(
            &mut input.as_slice(),
            &mut output,
            config,
            &shutdown,
            &registry,
        )
        .unwrap();
        assert!(matches!(end, SessionEnd::Suspended), "cut parks: {end:?}");
        let conn = crc_frames(&output);
        let token = match conn[0] {
            Frame::HelloAck { token, .. } => token,
            ref other => panic!("expected HelloAck, got {other:?}"),
        };
        (registry, token, event_units(&conn).len() as u64)
    }

    #[test]
    fn resume_points_outside_the_journal_window_are_honestly_rejected() {
        let config = ServerConfig::default();
        let (registry, token, _) = park_cut_session(&config);

        // A resume point past everything ever emitted (the u64::MAX
        // probe): pure-arithmetic rejection, no allocation, and the
        // unrecoverable session's journal memory is freed.
        let input = crc_input(&[Frame::Resume(proto::ResumeRequest {
            version: 4,
            token,
            events_received: u64::MAX,
        })]);
        let mut output = Vec::new();
        let end = serve_connection(
            &mut input.as_slice(),
            &mut output,
            &config,
            &AtomicBool::new(false),
            &registry,
        )
        .unwrap();
        assert!(matches!(end, SessionEnd::Rejected(_)), "got {end:?}");
        match &crc_frames(&output)[0] {
            Frame::Error { code, detail } => {
                assert_eq!(*code, ErrorCode::Unavailable);
                assert!(detail.contains("journal window"), "detail: {detail}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
        assert_eq!(registry.parked_sessions(), 0, "the dead session is dropped");
    }

    #[test]
    fn resume_behind_an_evicted_journal_window_is_honestly_rejected() {
        // A journal cap small enough that the 64 delivered events (≈41
        // bytes each) slide the window base well past zero: a client
        // claiming to have absorbed nothing can never be made whole.
        let tiny = ServerConfig {
            journal_max_bytes: 256,
            ..ServerConfig::default()
        };
        let (registry, token, delivered) = park_cut_session(&tiny);
        assert!(delivered > 8, "the cut run delivered {delivered} events");
        let input = crc_input(&[Frame::Resume(proto::ResumeRequest {
            version: 4,
            token,
            events_received: 0,
        })]);
        let mut output = Vec::new();
        let end = serve_connection(
            &mut input.as_slice(),
            &mut output,
            &tiny,
            &AtomicBool::new(false),
            &registry,
        )
        .unwrap();
        assert!(matches!(end, SessionEnd::Rejected(_)), "got {end:?}");
        match &crc_frames(&output)[0] {
            Frame::Error { code, .. } => assert_eq!(*code, ErrorCode::Unavailable),
            other => panic!("expected Error, got {other:?}"),
        }
        assert_eq!(registry.parked_sessions(), 0);
    }

    #[test]
    fn unknown_tokens_and_pre_v4_resumes_are_rejected() {
        let quick = ServerConfig {
            read_timeout_ms: 1,
            ..ServerConfig::default()
        };
        let registry = SessionRegistry::new();
        let shutdown = AtomicBool::new(false);

        // A pre-v4 resume is a version error before any token lookup.
        let input = crc_input(&[Frame::Resume(proto::ResumeRequest {
            version: 3,
            token: 7,
            events_received: 0,
        })]);
        let mut output = Vec::new();
        let end = serve_connection(
            &mut input.as_slice(),
            &mut output,
            &quick,
            &shutdown,
            &registry,
        )
        .unwrap();
        assert!(matches!(end, SessionEnd::Rejected(_)), "got {end:?}");
        match &crc_frames(&output)[0] {
            Frame::Error { code, .. } => assert_eq!(*code, ErrorCode::Version),
            other => panic!("expected Error, got {other:?}"),
        }

        // An unknown token waits out the park/reconnect grace window,
        // then is refused without inventing a session.
        let input = crc_input(&[Frame::Resume(proto::ResumeRequest {
            version: 4,
            token: 0xdead_beef,
            events_received: 0,
        })]);
        let mut output = Vec::new();
        let end = serve_connection(
            &mut input.as_slice(),
            &mut output,
            &quick,
            &shutdown,
            &registry,
        )
        .unwrap();
        assert!(matches!(end, SessionEnd::Rejected(_)), "got {end:?}");
        match &crc_frames(&output)[0] {
            Frame::Error { code, detail } => {
                assert_eq!(*code, ErrorCode::Unavailable);
                assert!(detail.contains("token"), "detail: {detail}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn event_journal_evicts_oldest_whole_events_and_keeps_the_newest() {
        // Cap of 30 bytes at 11 bytes per event (10 payload + 1 kind):
        // two events fit; the third always evicts the oldest.
        let mut journal = EventJournal::new(30);
        assert_eq!(journal.window(), (0, 0));
        for i in 0..5u8 {
            journal.push(i % 2, &[i; 10]);
        }
        assert_eq!(journal.window(), (3, 5), "three oldest evicted");
        let tail: Vec<(u8, Vec<u8>)> = journal
            .iter_from(0) // clamped to the base
            .map(|(k, p)| (k, p.to_vec()))
            .collect();
        assert_eq!(tail, vec![(1, vec![3; 10]), (0, vec![4; 10])]);
        assert_eq!(journal.iter_from(4).count(), 1, "mid-window iteration");
        assert_eq!(journal.iter_from(5).count(), 0, "nothing past the total");

        // One event larger than the whole cap is still retained: a
        // journal that cannot hold one event could never replay.
        let mut journal = EventJournal::new(4);
        journal.push(0, &[7; 64]);
        assert_eq!(journal.window(), (0, 1));
        journal.push(1, &[8; 64]);
        assert_eq!(journal.window(), (1, 2), "the newest always survives");
    }

    #[test]
    fn session_registry_mints_unique_nonzero_tokens() {
        let registry = SessionRegistry::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4096 {
            let token = registry.mint_token();
            assert_ne!(token, 0, "0 is the v2/v3 'no token' sentinel");
            assert!(seen.insert(token), "token minted twice");
        }
    }

    #[test]
    fn session_registry_parks_claims_and_reaps() {
        let config = ServerConfig::default();
        let registry = SessionRegistry::new();
        let token = registry.mint_token();
        registry.park(SessionState::new(params(16), token, &config));
        assert_eq!(registry.parked_sessions(), 1);

        // A wrong token times out its grace window empty-handed without
        // disturbing the parked session.
        assert!(registry
            .claim(token ^ 1, Duration::from_millis(10))
            .is_none());
        assert_eq!(registry.parked_sessions(), 1);

        // The right token claims exactly its session.
        let claimed = registry.claim(token, Duration::from_millis(10)).unwrap();
        assert_eq!(claimed.token, token);
        assert_eq!(registry.parked_sessions(), 0);

        // Reaping honors the idle deadline: a fresh park survives a
        // generous deadline and falls to an expired one.
        registry.park(claimed);
        assert_eq!(registry.reap_idle(Duration::from_secs(3600)), 0);
        assert_eq!(registry.parked_sessions(), 1);
        assert_eq!(registry.reap_idle(Duration::ZERO), 1);
        assert_eq!(registry.parked_sessions(), 0);
    }

    /// A fleet built exactly the way [`ReplayServer::build`] builds one
    /// from this config.
    fn test_fleet(config: &ServerConfig, slots: usize) -> FleetHandle {
        let params = config.negotiate(&SessionParams::defaults());
        let mut device = ServerConfig::device_config(&params).with_retry(config.retry);
        if let Some(plan) = config.fault {
            device = device.with_faults(plan);
        }
        FleetHandle::new(
            FleetConfig::new(slots, params.shards as usize, device)
                .with_quota(config.max_outstanding)
                .with_health(config.health),
        )
    }

    /// Serves one CRC-framed session (fleet or private) in memory and
    /// returns the reply frames.
    fn run_crc_session(
        frames: &[Frame],
        config: &ServerConfig,
        fleet: Option<&FleetHandle>,
    ) -> (SessionEnd, Vec<Frame>) {
        let input = crc_input(frames);
        let mut output = Vec::new();
        let registry = SessionRegistry::new();
        let end = serve_connection_inner(
            &mut input.as_slice(),
            &mut output,
            config,
            &AtomicBool::new(false),
            &registry,
            fleet,
        )
        .unwrap();
        (end, crc_frames(&output))
    }

    #[test]
    fn fleet_sessions_match_private_pool_sessions_bit_for_bit() {
        let config = ServerConfig::default();
        let fleet = test_fleet(&config, 2);
        let ops = zero_ops(300);
        // The fleet client asks for its own substrate; the fleet ignores
        // the request (the pool's shape is fleet-wide).
        let mut fleet_session = vec![Frame::Hello(SessionParams {
            shards: 16,
            module_mib: 512,
            ..SessionParams::defaults()
        })];
        let mut private_session = vec![Frame::Hello(SessionParams::defaults())];
        for chunk in ops.chunks(64) {
            fleet_session.push(Frame::Batch(chunk.to_vec()));
            private_session.push(Frame::Batch(chunk.to_vec()));
        }
        fleet_session.push(Frame::Bye);
        private_session.push(Frame::Bye);

        let (end, private) = run_crc_session(&private_session, &config, None);
        assert!(matches!(end, SessionEnd::Bye), "private: {end:?}");

        for round in 0..2 {
            let input = crc_input(&fleet_session);
            let mut output = Vec::new();
            let registry = SessionRegistry::new();
            let end = serve_connection_inner(
                &mut input.as_slice(),
                &mut output,
                &config,
                &AtomicBool::new(false),
                &registry,
                Some(&fleet),
            )
            .unwrap();
            assert!(matches!(end, SessionEnd::Bye), "round {round}: {end:?}");
            let served = crc_frames(&output);
            match served[0] {
                Frame::HelloAck { params: p, .. } => {
                    assert_eq!(p.tenants, 2, "the ack reports the fleet's slot count");
                    assert_eq!(
                        p.shards, config.shards as u16,
                        "substrate requests are fleet-wide, not per client"
                    );
                    assert_eq!(p.module_mib, 64);
                }
                ref other => panic!("expected HelloAck, got {other:?}"),
            }
            // The tenant's demultiplexed stream is the private pool's
            // stream, unit for unit, checksum included — and a recycled
            // slot (round 1) starts just as fresh.
            assert_eq!(event_units(&served), event_units(&private), "round {round}");
            assert_eq!(summary_of(&served), summary_of(&private), "round {round}");
            // The Bye parked a resume tombstone that still holds the
            // slot; the reaper frees both together.
            assert_eq!(fleet.free_slots(), 1, "tombstone holds the slot");
            assert_eq!(registry.reap_idle(Duration::ZERO), 1);
            assert_eq!(fleet.free_slots(), 2, "reaping releases the slot");
        }
    }

    #[test]
    fn oversized_v5_resource_claims_are_rejected_before_allocation() {
        let config = ServerConfig::default();
        let fleet = test_fleet(&config, 1);
        let claims = [
            SessionParams {
                tenants: MAX_TENANT_CLAIM + 1,
                ..SessionParams::defaults()
            },
            SessionParams {
                quota_ops: MAX_QUOTA_CLAIM + 1,
                ..SessionParams::defaults()
            },
        ];
        for hello in claims {
            for fleet in [Some(&fleet), None] {
                let (end, served) = run_crc_session(&[Frame::Hello(hello)], &config, fleet);
                assert!(matches!(end, SessionEnd::Rejected(_)), "got {end:?}");
                match &served[0] {
                    Frame::Error { code, detail } => {
                        assert_eq!(*code, ErrorCode::Policy);
                        assert!(detail.contains("claim out of range"), "detail: {detail}");
                    }
                    other => panic!("expected Error, got {other:?}"),
                }
            }
            assert_eq!(fleet.free_slots(), 1, "nothing was allocated");
        }
        // The caps themselves are serveable (the claim is a bound, not
        // a quirk of the rejection path).
        let at_cap = SessionParams {
            tenants: MAX_TENANT_CLAIM,
            quota_ops: MAX_QUOTA_CLAIM,
            ..SessionParams::defaults()
        };
        let (end, _) = run_crc_session(&[Frame::Hello(at_cap), Frame::Bye], &config, Some(&fleet));
        assert!(matches!(end, SessionEnd::Bye), "at-cap claim: {end:?}");
    }

    #[test]
    fn fleet_full_hellos_are_rejected_and_slots_recycle() {
        let config = ServerConfig::default();
        let fleet = test_fleet(&config, 1);
        let held = fleet.acquire_with(1, 1).expect("the only slot");
        let session = [
            Frame::Hello(SessionParams::defaults()),
            Frame::Batch(zero_ops(8)),
            Frame::Bye,
        ];
        let (end, served) = run_crc_session(&session, &config, Some(&fleet));
        assert!(matches!(end, SessionEnd::Rejected(_)), "got {end:?}");
        match &served[0] {
            Frame::Error { code, detail } => {
                assert_eq!(*code, ErrorCode::Unavailable);
                assert!(detail.contains("tenant slots"), "detail: {detail}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
        fleet.release(held);
        let (end, served) = run_crc_session(&session, &config, Some(&fleet));
        assert!(matches!(end, SessionEnd::Bye), "after release: {end:?}");
        assert_eq!(event_units(&served).len(), 8);
    }

    #[test]
    fn fleet_mode_refuses_worker_serving() {
        let config = ServerConfig {
            fleet_slots: 2,
            workers: true,
            ..ServerConfig::default()
        };
        let err = ReplayServer::bind_tcp("127.0.0.1:0", config).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn tcp_listeners_serve_the_same_protocol_as_unix_sockets() {
        let server = ReplayServer::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
        assert!(server.path().is_none(), "TCP-only servers have no path");
        let addr = server.tcp_addr().expect("a bound TCP address");
        let serving = thread::spawn(move || server.serve_connections(1).unwrap());
        let mut stream = TcpStream::connect(addr).unwrap();
        let hello = SessionParams {
            version: 2,
            ..SessionParams::defaults()
        };
        let mut input = Vec::new();
        write_frame(&mut input, &Frame::Hello(hello)).unwrap();
        for chunk in zero_ops(300).chunks(64) {
            write_frame(&mut input, &Frame::Batch(chunk.to_vec())).unwrap();
        }
        write_frame(&mut input, &Frame::Bye).unwrap();
        stream.write_all(&input).unwrap();
        stream.flush().unwrap();
        let mut frames = Vec::new();
        loop {
            let frame = proto::read_frame(&mut stream).unwrap();
            let done = matches!(frame, Frame::Summary(_));
            frames.push(frame);
            if done {
                break;
            }
        }
        serving.join().unwrap();
        // The served stream is the in-memory Unix-path stream of the
        // same session, checksum and all.
        let reference = run_session(2, &ServerConfig::default());
        assert_eq!(stream_shape(&frames), stream_shape(&reference));
    }

    #[test]
    fn rejected_batches_consume_no_sequence_numbers() {
        let restricted = SessionParams {
            module_mib: 64,
            ..params(1024)
        };
        let mut engine = ReplayEngine::new(&restricted);
        // Out-of-module destructive op: rejected by the safe range.
        let bad = vec![CodicOp::command(VariantId::DetZero, 1 << 40)];
        assert!(engine.submit_batch(&bad).is_err());
        assert_eq!(engine.next_seq(), 0);
        assert_eq!(engine.outstanding(), 0);
        let ok = engine.submit_batch(&zero_ops(4)).unwrap();
        let drained = ok.len() + engine.flush().len();
        assert_eq!(drained, 4);
        assert_eq!(engine.next_seq(), 4);
    }
}
