//! Trace files: the recorded operation streams the replay client plays.
//!
//! A trace is a plain-text file, one operation per line, in submission
//! order. Blank lines and `#` comments are ignored. The grammar:
//!
//! ```text
//! read <addr>            ordinary 64 B read
//! write <addr>           ordinary 64 B write
//! rowclone <addr>        RowClone FPM zeroing copy (baseline)
//! lisaclone <addr>       LISA-clone zeroing copy (baseline)
//! codic <variant> <addr> one CODIC command; variant ∈ {activate,
//!                        precharge, sig, sig-opt, sig-alt, det0, det1,
//!                        sigsa}
//! zero <addr>            shorthand for `codic det0 <addr>`
//! init0 <addr>           bulk-bitwise row init to all-zeros
//! init1 <addr>           bulk-bitwise row init to all-ones
//! maj-and <addr>         triple-row-activation majority (AND group)
//! maj-or <addr>          triple-row-activation majority (OR group)
//! not <src> <dst>        dual-contact NOT of one row into another
//! copy <src> <dst>       in-DRAM row copy
//! fill <addr> <pattern>  fill a row with a 64-bit pattern
//! ```
//!
//! Addresses (and the `fill` pattern) are decimal or `0x`-prefixed hex;
//! addresses are byte addresses. [`parse_trace`] and [`format_trace`]
//! round-trip; [`generate_mixed`] produces the deterministic mixed
//! secure-deallocation / cold-boot workload the benchmarks, the bundled
//! sample trace, and the end-to-end tests replay, and
//! [`generate_bulk_bitwise`] produces the deterministic bulk-bitwise
//! compute workload (planned vector AND/OR/XOR/ADD over random operands).

use std::fmt;

use codic_core::ops::{CodicOp, VariantId};
use codic_core::simd::{SimdLayout, VecOp};
use codic_dram::DramGeometry;

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What is wrong with it.
    pub reason: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceError {}

/// The trace token of each CODIC variant.
fn variant_token(variant: VariantId) -> &'static str {
    match variant {
        VariantId::Activate => "activate",
        VariantId::Precharge => "precharge",
        VariantId::Sig => "sig",
        VariantId::SigOpt => "sig-opt",
        VariantId::SigAlt => "sig-alt",
        VariantId::DetZero => "det0",
        VariantId::DetOne => "det1",
        VariantId::Sigsa => "sigsa",
    }
}

fn variant_from_token(token: &str) -> Option<VariantId> {
    VariantId::ALL
        .into_iter()
        .find(|&v| variant_token(v) == token)
}

fn parse_addr(token: &str, line: usize) -> Result<u64, TraceError> {
    let parsed = match token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => token.parse(),
    };
    parsed.map_err(|_| TraceError {
        line,
        reason: format!("bad address {token:?}"),
    })
}

/// Parses a whole trace file into the typed operation stream.
///
/// # Errors
///
/// Returns the first malformed line with its 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<CodicOp>, TraceError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a token");
        let op = match keyword {
            "read" | "write" | "rowclone" | "lisaclone" | "zero" | "init0" | "init1"
            | "maj-and" | "maj-or" => {
                let addr = parse_addr(
                    tokens.next().ok_or_else(|| TraceError {
                        line,
                        reason: format!("{keyword} needs an address"),
                    })?,
                    line,
                )?;
                match keyword {
                    "read" => CodicOp::read(addr),
                    "write" => CodicOp::write(addr),
                    "rowclone" => CodicOp::RowCloneZero { row_addr: addr },
                    "lisaclone" => CodicOp::LisaCloneZero { row_addr: addr },
                    "init0" => CodicOp::RowInit {
                        row_addr: addr,
                        ones: false,
                    },
                    "init1" => CodicOp::RowInit {
                        row_addr: addr,
                        ones: true,
                    },
                    "maj-and" => CodicOp::MajAnd { row_addr: addr },
                    "maj-or" => CodicOp::MajOr { row_addr: addr },
                    _ => CodicOp::command(VariantId::DetZero, addr),
                }
            }
            "not" | "copy" | "fill" => {
                let mut operand = |what: &str| {
                    parse_addr(
                        tokens.next().ok_or_else(|| TraceError {
                            line,
                            reason: format!("{keyword} needs {what}"),
                        })?,
                        line,
                    )
                };
                let a = operand("a source address")?;
                let b = operand("a second operand")?;
                match keyword {
                    "not" => CodicOp::Not {
                        src_addr: a,
                        dst_addr: b,
                    },
                    "copy" => CodicOp::RowCopy {
                        src_addr: a,
                        dst_addr: b,
                    },
                    _ => CodicOp::RowFill {
                        row_addr: a,
                        pattern: b,
                    },
                }
            }
            "codic" => {
                let token = tokens.next().ok_or_else(|| TraceError {
                    line,
                    reason: "codic needs a variant".to_string(),
                })?;
                let variant = variant_from_token(token).ok_or_else(|| TraceError {
                    line,
                    reason: format!("unknown variant {token:?}"),
                })?;
                let addr = parse_addr(
                    tokens.next().ok_or_else(|| TraceError {
                        line,
                        reason: "codic needs an address".to_string(),
                    })?,
                    line,
                )?;
                CodicOp::command(variant, addr)
            }
            other => {
                return Err(TraceError {
                    line,
                    reason: format!("unknown operation {other:?}"),
                })
            }
        };
        if tokens.next().is_some() {
            return Err(TraceError {
                line,
                reason: "trailing tokens".to_string(),
            });
        }
        ops.push(op);
    }
    Ok(ops)
}

/// Renders `ops` in the trace grammar (the inverse of [`parse_trace`]).
#[must_use]
pub fn format_trace(ops: &[CodicOp]) -> String {
    let mut out = String::new();
    for &op in ops {
        let line = match op {
            CodicOp::Read { addr } => format!("read {addr:#x}"),
            CodicOp::Write { addr } => format!("write {addr:#x}"),
            CodicOp::RowCloneZero { row_addr } => format!("rowclone {row_addr:#x}"),
            CodicOp::LisaCloneZero { row_addr } => format!("lisaclone {row_addr:#x}"),
            CodicOp::Command { variant, row_addr } => {
                format!("codic {} {row_addr:#x}", variant_token(variant))
            }
            CodicOp::RowInit { row_addr, ones } => {
                format!("init{} {row_addr:#x}", u8::from(ones))
            }
            CodicOp::MajAnd { row_addr } => format!("maj-and {row_addr:#x}"),
            CodicOp::MajOr { row_addr } => format!("maj-or {row_addr:#x}"),
            CodicOp::Not { src_addr, dst_addr } => format!("not {src_addr:#x} {dst_addr:#x}"),
            CodicOp::RowCopy { src_addr, dst_addr } => {
                format!("copy {src_addr:#x} {dst_addr:#x}")
            }
            CodicOp::RowFill { row_addr, pattern } => {
                format!("fill {row_addr:#x} {pattern:#x}")
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// A tiny xorshift64* generator, so trace generation needs no external
/// RNG crate and is bit-stable across platforms.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Generates the deterministic mixed serving trace: secure-deallocation
/// zeroing bursts (scattered freed rows), cold-boot destruction segments
/// (runs of consecutive rows), the RowClone/LISA-clone baselines, and
/// ordinary read/write traffic — all inside a `rows`-row module, CODIC
/// commands confined to the single `det0` variant so the replay steady
/// state carries no MRS barriers.
///
/// The stream is a pure function of `(ops, rows, seed)`.
#[must_use]
pub fn generate_mixed(ops: usize, rows: u64, seed: u64) -> Vec<CodicOp> {
    assert!(rows > 0, "a trace needs a module with at least one row");
    let mut rng = XorShift64::new(seed);
    let mut out = Vec::with_capacity(ops);
    // Cold-boot segments: a cursor sweeping consecutive rows while active.
    let mut sweep_left = 0u64;
    let mut sweep_row = 0u64;
    while out.len() < ops {
        if sweep_left > 0 {
            out.push(CodicOp::command(
                VariantId::DetZero,
                (sweep_row % rows) * DramGeometry::ROW_BYTES,
            ));
            sweep_row += 1;
            sweep_left -= 1;
            continue;
        }
        let row_addr = rng.below(rows) * DramGeometry::ROW_BYTES;
        match rng.below(100) {
            // Secure-deallocation: zero a scattered freed row.
            0..=39 => out.push(CodicOp::command(VariantId::DetZero, row_addr)),
            // Cold-boot: start a destruction segment of 16..48 rows.
            40..=44 => {
                sweep_row = row_addr / DramGeometry::ROW_BYTES;
                sweep_left = 16 + rng.below(32);
            }
            // In-DRAM copy baselines.
            45..=49 => out.push(CodicOp::RowCloneZero { row_addr }),
            50..=54 => out.push(CodicOp::LisaCloneZero { row_addr }),
            // Ordinary traffic interleaved on the same scheduler.
            55..=79 => out.push(CodicOp::read(row_addr + 64 * rng.below(8))),
            _ => out.push(CodicOp::write(row_addr + 64 * rng.below(8))),
        }
    }
    out.truncate(ops);
    out
}

/// Generates the deterministic bulk-bitwise compute workload: `rounds`
/// passes over every [`VecOp`] (AND, OR, XOR, ADD), each seeding fresh
/// pseudo-random `bits`-bit operands into a [`SimdLayout`] based at
/// byte address `base` and then replaying the planner's row-operation
/// sequence. Every emitted operation is a bulk-bitwise compute op
/// ([`CodicOp::is_compute`]), so the whole trace must land inside an
/// authorized compute region of at least
/// [`SimdLayout::rows_needed`] rows at `base`.
///
/// The stream is a pure function of `(rounds, base, bits, seed)`.
#[must_use]
pub fn generate_bulk_bitwise(rounds: usize, base: u64, bits: u32, seed: u64) -> Vec<CodicOp> {
    let layout = SimdLayout::new(base, bits);
    let mut rng = XorShift64::new(seed);
    let mut out = Vec::new();
    for _ in 0..rounds {
        for op in VecOp::ALL {
            let a: Vec<u64> = (0..bits).map(|_| rng.next_u64()).collect();
            let b: Vec<u64> = (0..bits).map(|_| rng.next_u64()).collect();
            out.extend(layout.seed(&a, &b));
            out.extend(layout.plan(op));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_text_round_trips() {
        let mut ops = vec![
            CodicOp::read(0x40),
            CodicOp::write(123_456),
            CodicOp::RowCloneZero { row_addr: 0x2000 },
            CodicOp::LisaCloneZero { row_addr: 0x4000 },
        ];
        for variant in VariantId::ALL {
            ops.push(CodicOp::command(variant, 0x8000));
        }
        ops.extend([
            CodicOp::RowInit {
                row_addr: 0x6000,
                ones: false,
            },
            CodicOp::RowInit {
                row_addr: 0x8000,
                ones: true,
            },
            CodicOp::MajAnd { row_addr: 0xA000 },
            CodicOp::MajOr { row_addr: 0xC000 },
            CodicOp::Not {
                src_addr: 0xE000,
                dst_addr: 0x1_0000,
            },
            CodicOp::RowCopy {
                src_addr: 0x1_2000,
                dst_addr: 0x1_4000,
            },
            CodicOp::RowFill {
                row_addr: 0x1_6000,
                pattern: 0xDEAD_BEEF_0123_4567,
            },
        ]);
        let text = format_trace(&ops);
        assert_eq!(parse_trace(&text).unwrap(), ops);
    }

    #[test]
    fn bulk_bitwise_lines_parse_operands_and_report_errors() {
        let ops = parse_trace("init0 0x2000\nnot 0x2000 0x4000\nfill 0x6000 0xff\n").unwrap();
        assert_eq!(
            ops,
            vec![
                CodicOp::RowInit {
                    row_addr: 0x2000,
                    ones: false,
                },
                CodicOp::Not {
                    src_addr: 0x2000,
                    dst_addr: 0x4000,
                },
                CodicOp::RowFill {
                    row_addr: 0x6000,
                    pattern: 0xff,
                },
            ]
        );
        assert_eq!(parse_trace("not 0x2000\n").unwrap_err().line, 1);
        assert_eq!(parse_trace("maj-and\n").unwrap_err().line, 1);
        assert_eq!(parse_trace("copy 1 2 3\n").unwrap_err().line, 1);
    }

    #[test]
    fn comments_blanks_and_radices_parse() {
        let text = "\n# header comment\nread 0x40   # inline comment\nzero 8192\n\nwrite 0X80\n";
        let ops = parse_trace(text).unwrap();
        assert_eq!(
            ops,
            vec![
                CodicOp::read(0x40),
                CodicOp::command(VariantId::DetZero, 8192),
                CodicOp::write(0x80),
            ]
        );
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err = parse_trace("read 0x40\nfrobnicate 12\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("frobnicate"));
        assert_eq!(parse_trace("codic det9 0\n").unwrap_err().line, 1);
        assert_eq!(parse_trace("read\n").unwrap_err().line, 1);
        assert_eq!(parse_trace("read 0xzz\n").unwrap_err().line, 1);
        assert_eq!(parse_trace("read 1 2\n").unwrap_err().line, 1);
    }

    #[test]
    fn generated_traces_are_deterministic_mixed_and_in_range() {
        let rows = 8192;
        let a = generate_mixed(10_000, rows, 7);
        let b = generate_mixed(10_000, rows, 7);
        assert_eq!(a, b, "same (ops, rows, seed) ⇒ same trace");
        assert_ne!(a, generate_mixed(10_000, rows, 8), "seed matters");
        assert_eq!(a.len(), 10_000);
        let zeroes = a
            .iter()
            .filter(|op| op.variant() == Some(VariantId::DetZero))
            .count();
        let data = a.iter().filter(|op| op.is_data_access()).count();
        let clones = a.iter().filter(|op| op.row_op_kind().is_some()).count() - zeroes;
        assert!(zeroes > 3_000, "zeroing dominates ({zeroes})");
        assert!(data > 1_200, "ordinary traffic present ({data})");
        assert!(clones > 300, "clone baselines present ({clones})");
        let module_bytes = rows * DramGeometry::ROW_BYTES;
        assert!(a.iter().all(|op| op.row_addr() < module_bytes));
        // Cold-boot segments exist: some consecutive-row zeroing runs.
        let consecutive = a
            .windows(2)
            .filter(|w| {
                w[0].variant() == Some(VariantId::DetZero)
                    && w[1].variant() == Some(VariantId::DetZero)
                    && w[1].row_addr() == w[0].row_addr() + DramGeometry::ROW_BYTES
            })
            .count();
        assert!(consecutive > 500, "destruction segments ({consecutive})");
    }

    #[test]
    fn generated_traces_round_trip_through_the_text_format() {
        let ops = generate_mixed(2_000, 4096, 42);
        assert_eq!(parse_trace(&format_trace(&ops)).unwrap(), ops);
        let bitwise = generate_bulk_bitwise(1, 0x10_0000, 8, 42);
        assert_eq!(parse_trace(&format_trace(&bitwise)).unwrap(), bitwise);
    }

    #[test]
    fn bulk_bitwise_traces_are_deterministic_compute_only_and_confined() {
        let base = 0x40_0000;
        let a = generate_bulk_bitwise(2, base, 8, 7);
        assert_eq!(a, generate_bulk_bitwise(2, base, 8, 7));
        assert_ne!(a, generate_bulk_bitwise(2, base, 8, 8), "seed matters");
        assert!(!a.is_empty());
        assert!(a.iter().all(|op| op.is_compute()));
        let layout = SimdLayout::new(base, 8);
        let end = base + layout.rows_needed() * DramGeometry::ROW_BYTES;
        assert!(a
            .iter()
            .flat_map(|op| op.written_rows().row_addrs())
            .all(|addr| (base..end).contains(&addr)));
        // All four vector operations appear each round: MAJ groups from
        // AND and OR conventions, NOTs from the XOR decomposition.
        assert!(a.iter().any(|op| matches!(op, CodicOp::MajAnd { .. })));
        assert!(a.iter().any(|op| matches!(op, CodicOp::MajOr { .. })));
        assert!(a.iter().any(|op| matches!(op, CodicOp::Not { .. })));
        assert!(a.iter().any(|op| matches!(op, CodicOp::RowFill { .. })));
    }
}
