//! Chaos end-to-end: the fault-injection layer exercised over the real
//! wire path, against the acceptance contract of the robustness PR:
//!
//! - **Phase A** — with retry disabled, a misfire-armed server serving
//!   the 160k-op mixed trace delivers every *non-faulted* operation
//!   **bit-identical** (finish cycle and energy bits) to the fault-free
//!   server, and every faulted operation as a typed `Failed` frame; the
//!   in-process faulted engine and the socket stream agree exactly.
//! - **Phase B** — retry-with-backoff recovers almost all misfires at a
//!   harsh per-attempt rate, deterministically (twin runs, one
//!   checksum).
//! - **Phase C** — a shard whose clock wedges mid-trace is quarantined
//!   at a batch boundary, its stranded operations surface as typed
//!   `ClockStuck` failures, and the remaining traffic re-routes to the
//!   survivors deterministically.
//! - **Shutdown** — a server told to shut down mid-session drains what
//!   is in flight and sends an honest `Summary` before hanging up.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use codic_core::fault::{FaultCause, FaultPlan, RetryPolicy};
use codic_server::client::{replay, ClientReport};
use codic_server::proto::{
    self, read_frame, write_frame, Fnv64, Frame, SessionParams, WireCompletion,
};
use codic_server::server::{ReplayEngine, ReplayServer, ServerConfig};
use codic_server::trace::generate_mixed;

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("codic-chaos-{tag}-{}.sock", std::process::id()))
}

fn with_server<R>(
    tag: &str,
    config: ServerConfig,
    sessions: usize,
    client: impl FnOnce(&PathBuf) -> R,
) -> R {
    let socket = temp_socket(tag);
    let server = ReplayServer::bind(&socket, config).expect("bind temp socket");
    let serving = std::thread::spawn(move || {
        server.serve_connections(sessions).expect("serve");
    });
    let out = client(&socket);
    serving.join().expect("server thread");
    out
}

fn chaos_config(fault: FaultPlan, retry: RetryPolicy) -> ServerConfig {
    ServerConfig {
        fault: Some(fault),
        retry,
        ..ServerConfig::default()
    }
}

fn wire_run(tag: &str, config: ServerConfig, ops: &[codic_core::ops::CodicOp]) -> ClientReport {
    with_server(tag, config, 1, |socket| {
        replay(socket, &SessionParams::defaults(), ops, 1024).expect("chaos session")
    })
}

#[test]
fn misfires_on_the_wire_flip_outcome_bits_and_nothing_else() {
    // The capstone trace: 160k mixed ops (≥100k row operations).
    let ops = generate_mixed(160_000, 8192, 2024);
    let plan = FaultPlan::new(0xc0d1_c000).with_misfires(2048); // ~3% of row ops

    let baseline = wire_run("base", ServerConfig::default(), &ops);
    assert!(baseline.failures.is_empty());
    let faulted = wire_run("misfire", chaos_config(plan, RetryPolicy::default()), &ops);

    // Conservation: every op resolves exactly once, one way or the other.
    assert_eq!(
        faulted.completions.len() + faulted.failures.len(),
        ops.len()
    );
    assert!(
        !faulted.failures.is_empty(),
        "a 3% misfire plan over 100k+ row ops must fire"
    );

    // Every non-faulted op is bit-identical to the fault-free server:
    // same shard, op, finish cycle, busy cycles, and energy bits.
    let reference: HashMap<u64, &WireCompletion> =
        baseline.completions.iter().map(|c| (c.seq, c)).collect();
    for got in &faulted.completions {
        let want = reference[&got.seq];
        assert_eq!(got.shard, want.shard, "seq {} shard", got.seq);
        assert_eq!(got.op, want.op, "seq {} op", got.seq);
        assert_eq!(got.finish_cycle, want.finish_cycle, "seq {}", got.seq);
        assert_eq!(got.busy_cycles, want.busy_cycles, "seq {}", got.seq);
        assert_eq!(
            got.energy_nj.to_bits(),
            want.energy_nj.to_bits(),
            "seq {} energy bits",
            got.seq
        );
    }
    // Every faulted op is a typed misfire on a row operation, at the
    // exact cycle its fault-free twin finished — the op occupied the
    // DRAM either way; only the outcome bits differ.
    for failure in &faulted.failures {
        assert_eq!(failure.cause, FaultCause::Misfire);
        assert_eq!(failure.attempts, 1, "retry is disabled");
        assert!(
            failure.op.row_op_kind().is_some(),
            "plain reads/writes never misfire"
        );
        let twin = reference[&failure.seq];
        assert_eq!(failure.shard, twin.shard);
        assert_eq!(failure.op, twin.op);
        assert_eq!(failure.at_cycle, twin.finish_cycle, "timeline preserved");
    }
    assert_eq!(
        faulted.summary.max_finish_cycle, baseline.summary.max_finish_cycle,
        "the session timeline is bit-identical"
    );

    // The in-process faulted engine, batched identically, must agree
    // with the socket stream event for event — one determinism check
    // across two fully independent runs.
    let mut engine = ReplayEngine::with_faults(
        &faulted.params,
        Some(plan),
        RetryPolicy::default(),
        Default::default(),
    );
    let mut in_process = Vec::with_capacity(ops.len());
    for chunk in ops.chunks(1024) {
        in_process.extend(engine.submit_batch(chunk).expect("in range"));
    }
    in_process.extend(engine.flush());
    assert_eq!(in_process.len(), ops.len());
    let (mut wire_c, mut wire_f) = (faulted.completions.iter(), faulted.failures.iter());
    for r in &in_process {
        match r.to_wire_failure() {
            Some(failure) => assert_eq!(&failure, wire_f.next().expect("failure on the wire")),
            None => assert_eq!(&r.to_wire(), wire_c.next().expect("completion on the wire")),
        }
    }
}

#[test]
fn retry_recovers_misfires_over_the_wire_deterministically() {
    let ops = generate_mixed(20_000, 8192, 7);
    // A harsh 20% per-attempt rate; 4 attempts push the per-op failure
    // rate to ~0.16%, so retry must recover the overwhelming majority.
    let plan = FaultPlan::new(77).with_misfires(13_107);
    let retry = RetryPolicy::attempts(4).with_backoff(32, 512);

    let recovered = wire_run("retry", chaos_config(plan, retry), &ops);
    let unprotected = wire_run("noretry", chaos_config(plan, RetryPolicy::default()), &ops);

    assert!(
        unprotected.summary.failed > 1_000,
        "20% of 12k+ row ops must misfire unprotected, saw {}",
        unprotected.summary.failed
    );
    assert!(
        recovered.summary.failed < unprotected.summary.failed / 20,
        "retry must recover ≥95% of misfires: {} vs {}",
        recovered.summary.failed,
        unprotected.summary.failed
    );
    for failure in &recovered.failures {
        assert_eq!(
            failure.attempts, 4,
            "a final failure exhausted its attempts"
        );
        assert_eq!(failure.cause, FaultCause::Misfire);
    }
    // Determinism: a twin run is bit-identical down to the checksum.
    let twin = wire_run("retrytwin", chaos_config(plan, retry), &ops);
    assert_eq!(recovered.checksum, twin.checksum);
    assert_eq!(recovered.summary, twin.summary);
}

#[test]
fn stuck_shard_is_quarantined_and_traffic_reroutes_to_survivors() {
    let ops = generate_mixed(8_000, 8192, 9);
    // Shard 1's clock wedges at cycle 50 — mid-first-batch.
    let plan = FaultPlan::new(9).with_stuck_shard(1, 50);

    let run = |tag: &str| wire_run(tag, chaos_config(plan, RetryPolicy::default()), &ops);
    let report = run("stuck");

    assert_eq!(report.completions.len() + report.failures.len(), ops.len());
    assert!(
        !report.failures.is_empty(),
        "the wedged shard strands operations"
    );
    for failure in &report.failures {
        assert_eq!(failure.cause, FaultCause::ClockStuck);
        assert_eq!(failure.shard, 1, "only the wedged shard fails");
    }
    // Shard 1 traffic after the wedge re-routed: any completion still on
    // shard 1 finished before the clock ceiling.
    let on_wedged: Vec<&WireCompletion> =
        report.completions.iter().filter(|c| c.shard == 1).collect();
    for c in &on_wedged {
        assert!(
            c.finish_cycle <= 50,
            "seq {} completed on the wedged shard at cycle {}",
            c.seq,
            c.finish_cycle
        );
    }
    // The survivors actually absorbed the re-routed rows.
    for shard in [0u16, 2, 3] {
        assert!(
            report.completions.iter().any(|c| c.shard == shard),
            "survivor shard {shard} served traffic"
        );
    }
    // Deterministic containment: the twin run fails the same set and
    // re-routes identically, down to the checksum.
    let twin = run("stucktwin");
    assert_eq!(report.checksum, twin.checksum);
    assert_eq!(report.summary, twin.summary);
    assert_eq!(report.failures, twin.failures);
}

#[test]
fn graceful_shutdown_drains_in_flight_ops_and_sends_an_honest_summary() {
    let socket = temp_socket("shutdown");
    let server = ReplayServer::bind(&socket, ServerConfig::default()).expect("bind");
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.serve_forever());

    // A batch below max_outstanding: the boundary admits it without
    // driving, so nearly everything is still in flight afterwards.
    let ops = generate_mixed(800, 8192, 13);
    let stream = UnixStream::connect(&socket).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    // Pinned to v3: this test speaks raw bare frames on purpose (the
    // CRC-framed v4 path has its own suite in chaos_transport_e2e.rs).
    let hello = SessionParams {
        version: 3,
        ..SessionParams::defaults()
    };
    write_frame(&mut writer, &Frame::Hello(hello)).expect("hello");
    writer.flush().expect("flush");
    match read_frame(&mut reader).expect("ack") {
        Frame::HelloAck { .. } => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    write_frame(&mut writer, &Frame::Batch(ops.clone())).expect("batch");
    writer.flush().expect("flush");

    let mut checksum = Fnv64::new();
    let mut payload = Vec::new();
    let mut delivered = 0u64;
    // The v3 session batches completions into Events frames; a unit
    // checksums exactly like the bare Completion frame it replaces.
    let absorb = |events: &[proto::SessionEvent],
                  checksum: &mut Fnv64,
                  payload: &mut Vec<u8>,
                  delivered: &mut u64| {
        for event in events {
            match event {
                proto::SessionEvent::Completion(c) => {
                    payload.clear();
                    proto::completion_payload(c, payload);
                }
                proto::SessionEvent::Failure(f) => {
                    payload.clear();
                    proto::failure_payload(f, payload);
                }
            }
            checksum.update(payload);
            *delivered += 1;
        }
    };
    loop {
        match read_frame(&mut reader).expect("burst") {
            Frame::Completion(c) => {
                payload.clear();
                proto::completion_payload(&c, &mut payload);
                checksum.update(&payload);
                delivered += 1;
            }
            Frame::Events(events) => absorb(&events, &mut checksum, &mut payload, &mut delivered),
            Frame::Batched(ack) => {
                assert_eq!(ack.accepted, ops.len() as u32);
                assert!(
                    ack.outstanding > 0,
                    "the shutdown must catch operations in flight"
                );
                break;
            }
            other => panic!("expected Completion/Batched, got {other:?}"),
        }
    }

    // No Bye: the server is told to shut down with the session open.
    handle.shutdown();
    let summary = loop {
        match read_frame(&mut reader).expect("teardown stream") {
            Frame::Completion(c) => {
                payload.clear();
                proto::completion_payload(&c, &mut payload);
                checksum.update(&payload);
                delivered += 1;
            }
            Frame::Events(events) => absorb(&events, &mut checksum, &mut payload, &mut delivered),
            Frame::Summary(summary) => break summary,
            other => panic!("expected Completion/Events/Summary, got {other:?}"),
        }
    };
    serving.join().expect("server thread").expect("accept loop");

    // Honest totals: every in-flight op was drained and accounted, and
    // the checksum covers exactly what was streamed.
    assert_eq!(summary.ops, ops.len() as u64);
    assert_eq!(summary.ops, delivered);
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.checksum, checksum.value());

    // A post-shutdown connection is turned away (or refused outright).
    if let Ok(stream) = UnixStream::connect(&socket) {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        if write_frame(&mut writer, &Frame::Hello(SessionParams::defaults()))
            .and_then(|()| writer.flush())
            .is_ok()
        {
            assert!(
                read_frame(&mut reader).is_err(),
                "a shut-down server must not serve new sessions"
            );
        }
    }
}
