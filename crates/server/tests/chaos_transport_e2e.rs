//! Chaos-transport end to end: protocol v4's resume machinery exercised
//! over real sockets while the seeded chaos shim actively cuts,
//! corrupts, shortens, and stalls the wire.
//!
//! The acceptance contract this suite pins:
//!
//! - A session cut mid-stream reconnects, resumes, and finishes with a
//!   `Summary` — server-side checksum included — **bit-identical** to
//!   an uninterrupted run, and a client-visible stream that verifies
//!   against the in-process reference engine.
//! - The same holds with `--workers` pipelined serving and with
//!   device-level fault injection armed at the same time: the three
//!   fault domains (device, session, transport) compose without
//!   touching the DRAM timeline.
//! - Corrupted bytes are always *detected* (CRC32C trailers), surface
//!   as reconnects, and never as wrong data.
//! - Short reads/writes and stalls are pure pacing: one connection, no
//!   resume, same bytes.
//! - A client that vanishes (silent or cut) is honestly torn down by
//!   the idle deadline, and its parked resume state — journal
//!   included — is reaped by the accept loop (the stale-session fix).

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use codic_core::fault::FaultPlan;
use codic_server::chaos::{self, ChaosPlan};
use codic_server::client::{
    replay, replay_resumable_with, verify_against_reference, ClientReport, ResumePolicy,
};
use codic_server::proto::{read_frame_crc, write_frame_crc, ErrorCode, Frame, SessionParams};
use codic_server::server::{ReplayServer, ServerConfig};
use codic_server::trace::generate_mixed;

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("codic-chaoswire-{tag}-{}.sock", std::process::id()))
}

/// A live daemon-mode server (`serve_forever`) the closure's client may
/// connect to as many times as its chaos requires.
fn with_live_server<R>(
    tag: &str,
    config: ServerConfig,
    client: impl FnOnce(&PathBuf, &ReplayServer) -> R,
) -> R {
    let socket = temp_socket(tag);
    let server = Arc::new(ReplayServer::bind(&socket, config).expect("bind temp socket"));
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn({
        let server = Arc::clone(&server);
        move || server.serve_forever().expect("serve")
    });
    let out = client(&socket, &server);
    handle.shutdown();
    serving.join().expect("server thread");
    out
}

type ChaosHalves = (
    BufReader<chaos::ChaosReader<UnixStream>>,
    BufWriter<chaos::ChaosWriter<UnixStream>>,
);

/// Opens connection `attempt` through `plan`'s chaos (independently
/// reseeded per attempt, like the real client binary does).
fn chaos_connect(socket: &Path, plan: ChaosPlan, attempt: u32) -> io::Result<ChaosHalves> {
    let stream = UnixStream::connect(socket)?;
    let (reader, writer) = chaos::wrap_unix(stream, plan.for_attempt(attempt))?;
    Ok((BufReader::new(reader), BufWriter::new(writer)))
}

/// Runs the resumable client through `plan` against `socket`.
fn chaos_replay(
    socket: &Path,
    ops: &[codic_core::ops::CodicOp],
    batch: usize,
    plan: ChaosPlan,
) -> ClientReport {
    let policy = ResumePolicy {
        max_resumes: 32,
        backoff_base: Duration::from_millis(1),
    };
    replay_resumable_with(&SessionParams::defaults(), ops, batch, policy, |attempt| {
        chaos_connect(socket, plan, attempt)
    })
    .expect("chaotic session recovers")
}

/// Polls `probe` until it returns true or `deadline` passes.
fn eventually(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let started = Instant::now();
    while started.elapsed() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    probe()
}

#[test]
fn cut_sessions_resume_to_the_uninterrupted_checksum() {
    let ops = generate_mixed(12_000, 8192, 99);
    with_live_server("cut", ServerConfig::default(), |socket, _| {
        let clean = replay(socket, &SessionParams::defaults(), &ops, 512).expect("clean run");
        verify_against_reference(&clean, &ops, 512).expect("clean stream verifies");
        assert_eq!(clean.connections, 1);

        // ~500 KiB of completions stream down: a 150 KiB cut budget
        // guarantees several mid-frame kills before the trace finishes.
        let plan = ChaosPlan::new(0xc4a0_5001).with_cut_after(150_000);
        let chaotic = chaos_replay(socket, &ops, 512, plan);
        assert!(
            chaotic.connections > 1,
            "the cut must actually fire (got {} connection(s))",
            chaotic.connections
        );
        assert_eq!(
            chaotic.summary.checksum, clean.summary.checksum,
            "a resumed session's checksum is bit-identical to a clean run"
        );
        assert_eq!(chaotic.summary, clean.summary);
        assert_eq!(chaotic.completions.len(), ops.len());
        verify_against_reference(&chaotic, &ops, 512).expect("chaotic stream verifies");
    });
}

#[test]
fn cut_sessions_resume_bit_identically_under_pipelined_workers() {
    let ops = generate_mixed(12_000, 8192, 99);
    let piped = ServerConfig {
        workers: true,
        ..ServerConfig::default()
    };
    with_live_server("cutworkers", piped, |socket, _| {
        let clean = replay(socket, &SessionParams::defaults(), &ops, 512).expect("clean run");
        let plan = ChaosPlan::new(0x90b0_7e11).with_cut_after(140_000);
        let chaotic = chaos_replay(socket, &ops, 512, plan);
        assert!(chaotic.connections > 1, "the cut must actually fire");
        assert_eq!(chaotic.summary, clean.summary);
        verify_against_reference(&chaotic, &ops, 512).expect("worker stream verifies");
    });
}

#[test]
fn transport_cuts_compose_with_device_fault_injection() {
    // Device misfires *and* transport cuts at once: the CI smoke's
    // fault plan, served over a wire that keeps dying. Failures are
    // session events like completions — journaled, replayed, and
    // checksummed — so the faulted stream resumes bit-identically too.
    let ops = generate_mixed(12_000, 8192, 2024);
    let faulted = ServerConfig {
        fault: Some(FaultPlan::new(2024).with_misfires(6554)),
        ..ServerConfig::default()
    };
    with_live_server("cutfaults", faulted, |socket, _| {
        let clean = replay(socket, &SessionParams::defaults(), &ops, 512).expect("clean run");
        assert!(
            !clean.failures.is_empty(),
            "the misfire plan must actually fire"
        );
        let plan = ChaosPlan::new(0xfa17_c001).with_cut_after(160_000);
        let chaotic = chaos_replay(socket, &ops, 512, plan);
        assert!(chaotic.connections > 1, "the cut must actually fire");
        assert_eq!(chaotic.summary, clean.summary);
        assert_eq!(chaotic.failures.len(), clean.failures.len());
        assert_eq!(
            chaotic.failures, clean.failures,
            "typed failures replay exactly"
        );
    });
}

#[test]
fn corrupted_bytes_are_detected_and_healed_by_resume() {
    // ~1 corrupted byte per 64 KiB per direction over a ~200 KiB
    // session: every strike is caught by a CRC32C trailer (client- or
    // server-side), kills that connection, and the next one resumes.
    // Nothing ever decodes wrong — the final stream is the clean one.
    let ops = generate_mixed(4_000, 8192, 7);
    with_live_server("corrupt", ServerConfig::default(), |socket, _| {
        let clean = replay(socket, &SessionParams::defaults(), &ops, 256).expect("clean run");
        let plan = ChaosPlan::new(0x0bad_b175).with_corruption(1);
        let chaotic = chaos_replay(socket, &ops, 256, plan);
        assert_eq!(chaotic.summary, clean.summary);
        assert_eq!(chaotic.completions.len(), ops.len());
        verify_against_reference(&chaotic, &ops, 256).expect("healed stream verifies");
    });
}

#[test]
fn short_io_and_stalls_are_pure_pacing() {
    // 7-byte transfers and seeded ~1 ms stalls: brutal for buffering,
    // invisible to correctness — one connection, no resume, the clean
    // checksum.
    let ops = generate_mixed(2_000, 8192, 55);
    with_live_server("shortio", ServerConfig::default(), |socket, _| {
        let clean = replay(socket, &SessionParams::defaults(), &ops, 256).expect("clean run");
        let plan = ChaosPlan::new(0x51a1_1ed0).with_short_io(7).with_stalls(64);
        let paced = chaos_replay(socket, &ops, 256, plan);
        assert_eq!(paced.connections, 1, "pacing alone must not kill anything");
        assert_eq!(paced.summary, clean.summary);
        verify_against_reference(&paced, &ops, 256).expect("paced stream verifies");
    });
}

#[test]
fn silent_clients_are_torn_down_honestly_at_the_idle_deadline() {
    let quick = ServerConfig {
        read_timeout_ms: 5,
        session_idle_ms: 60,
        ..ServerConfig::default()
    };
    with_live_server("idlesilent", quick, |socket, server| {
        let stream = UnixStream::connect(socket).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        write_frame_crc(&mut writer, &Frame::Hello(SessionParams::defaults())).expect("hello");
        writer.flush().expect("flush");
        match read_frame_crc(&mut reader).expect("hello ack") {
            Frame::HelloAck { token, .. } => assert_ne!(token, 0),
            other => panic!("expected HelloAck, got {other:?}"),
        }
        // Go silent. The server must tear the session down honestly:
        // a typed Unavailable naming the deadline, then the Summary of
        // what was actually delivered (nothing).
        match read_frame_crc(&mut reader).expect("idle teardown") {
            Frame::Error { code, detail } => {
                assert_eq!(code, ErrorCode::Unavailable);
                assert!(detail.contains("idle deadline"), "detail: {detail}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
        match read_frame_crc(&mut reader).expect("final summary") {
            Frame::Summary(s) => assert_eq!(s.ops, 0),
            other => panic!("expected Summary, got {other:?}"),
        }
        // An idle teardown frees the session outright — nothing parks.
        assert_eq!(server.parked_sessions(), 0);
    });
}

#[test]
fn parked_sessions_of_vanished_clients_are_reaped() {
    // The stale-session regression: a client cut mid-stream parks its
    // session for resume, but if it never comes back the accept loop's
    // reaper must free the session (journal included) at the idle
    // deadline — parked state may not accumulate forever.
    let quick = ServerConfig {
        read_timeout_ms: 5,
        session_idle_ms: 60,
        ..ServerConfig::default()
    };
    let ops = generate_mixed(1_000, 8192, 13);
    with_live_server("idlereap", quick, |socket, server| {
        let stream = UnixStream::connect(socket).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        write_frame_crc(&mut writer, &Frame::Hello(SessionParams::defaults())).expect("hello");
        write_frame_crc(&mut writer, &Frame::Batch(ops.clone())).expect("batch");
        writer.flush().expect("flush");
        let mut sink = [0u8; 4096];
        let _ = reader.read(&mut sink); // absorb a little, then vanish
        drop(reader);
        drop(writer);

        assert!(
            eventually(Duration::from_secs(5), || server.parked_sessions() == 1),
            "the cut session must park for resume"
        );
        assert!(
            eventually(Duration::from_secs(5), || server.parked_sessions() == 0),
            "the reaper must free the parked session at the idle deadline"
        );
    });
}
