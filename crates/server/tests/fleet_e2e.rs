//! Multi-tenant shared-fleet serving, end to end over real sockets:
//! many concurrent sessions multiplexed onto one shared device fleet,
//! over the Unix listener and the TCP listener at once.
//!
//! The acceptance contract this suite pins:
//!
//! - k concurrent tenants on a shared fleet each receive a stream
//!   **bit-identical** to a solo run on a private pool — the in-process
//!   reference engine (`verify_against_reference`) and a live
//!   private-pool server both agree — over Unix and TCP alike.
//! - The bundled sample trace played through a fleet tenant over TCP
//!   lands the repo-wide pinned checksum `0x2361aca91f8ddfd0`: fleet
//!   multiplexing and transport choice are invisible to the stream.
//! - A tenant whose wire is cut mid-stream resumes to its clean
//!   checksum while its neighbors' sessions — running the whole time —
//!   are not perturbed by the cut, the park, or the resume.
//! - Device-level fault injection composes: a misfire-armed fleet
//!   serves each tenant the same typed-failure stream a misfire-armed
//!   private server would.
//! - Oversized v5 resource claims (tenant count, op quota) are rejected
//!   with a typed `Policy` error before any allocation, a full fleet
//!   rejects with `Unavailable`, and a finished tenant's slot is
//!   recycled to the next Hello once the reaper frees its tombstone.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use codic_core::fault::FaultPlan;
use codic_core::ops::CodicOp;
use codic_server::chaos::{self, ChaosPlan};
use codic_server::client::{
    replay, replay_resumable_with, replay_tcp, verify_against_reference, ClientReport, ResumePolicy,
};
use codic_server::proto::{
    read_frame_crc, write_frame_crc, ErrorCode, Frame, SessionParams, MAX_TENANT_CLAIM,
};
use codic_server::server::{ReplayServer, ServerConfig};
use codic_server::trace::{generate_mixed, parse_trace};

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("codic-fleet-{tag}-{}.sock", std::process::id()))
}

/// A live daemon-mode fleet server listening on a Unix socket *and* an
/// ephemeral TCP port at once; the closure gets both addresses.
fn with_fleet_server<R>(
    tag: &str,
    config: ServerConfig,
    client: impl FnOnce(&PathBuf, SocketAddr, &ReplayServer) -> R,
) -> R {
    let socket = temp_socket(tag);
    let server = ReplayServer::bind(&socket, config)
        .expect("bind temp socket")
        .with_tcp("127.0.0.1:0")
        .expect("bind ephemeral tcp");
    let addr = server.tcp_addr().expect("tcp listener address");
    let server = Arc::new(server);
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn({
        let server = Arc::clone(&server);
        move || server.serve_forever().expect("serve")
    });
    let out = client(&socket, addr, &server);
    handle.shutdown();
    serving.join().expect("server thread");
    out
}

/// Solo references: each trace played alone against a live
/// *private-pool* server (no fleet) with the same config.
fn solo_reports(tag: &str, config: ServerConfig, traces: &[Vec<CodicOp>]) -> Vec<ClientReport> {
    let socket = temp_socket(&format!("{tag}-solo"));
    let server = Arc::new(ReplayServer::bind(&socket, config).expect("bind solo socket"));
    let handle = server.shutdown_handle();
    let serving = std::thread::spawn({
        let server = Arc::clone(&server);
        move || server.serve_forever().expect("serve solo")
    });
    let reports = traces
        .iter()
        .map(|ops| replay(&socket, &SessionParams::defaults(), ops, 512).expect("solo run"))
        .collect();
    handle.shutdown();
    serving.join().expect("solo server thread");
    reports
}

/// Polls `probe` until it returns true or `deadline` passes.
fn eventually(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let started = Instant::now();
    while started.elapsed() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    probe()
}

fn fleet_config(slots: usize) -> ServerConfig {
    ServerConfig {
        fleet_slots: slots,
        ..ServerConfig::default()
    }
}

#[test]
fn concurrent_fleet_tenants_match_solo_private_runs_over_unix_and_tcp() {
    // Four tenants with four distinct traces, two over the Unix
    // listener and two over TCP, all in flight at once on one shared
    // fleet. Each must land exactly the stream a private-pool server
    // gives that trace alone.
    let traces: Vec<Vec<CodicOp>> = (0..4u64)
        .map(|t| generate_mixed(3_000, 8192, 100 + t))
        .collect();
    let solo = solo_reports("mix", ServerConfig::default(), &traces);

    let fleet = with_fleet_server("mix", fleet_config(4), |socket, addr, _| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = traces
                .iter()
                .enumerate()
                .map(|(tenant, ops)| {
                    scope.spawn(move || {
                        if tenant % 2 == 0 {
                            replay(socket, &SessionParams::defaults(), ops, 512)
                        } else {
                            replay_tcp(addr, &SessionParams::defaults(), ops, 512)
                        }
                        .expect("fleet tenant run")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tenant thread"))
                .collect::<Vec<_>>()
        })
    });

    for (tenant, (ours, solo)) in fleet.iter().zip(&solo).enumerate() {
        assert_eq!(
            ours.summary, solo.summary,
            "tenant {tenant}: fleet summary differs from the solo private-pool run"
        );
        assert_eq!(ours.completions, solo.completions, "tenant {tenant}");
        assert_eq!(ours.checksum, solo.checksum, "tenant {tenant}");
        verify_against_reference(ours, &traces[tenant], 512).expect("fleet stream verifies");
        // The ack advertises the fleet: every tenant sees 4 slots.
        assert_eq!(ours.params.tenants, 4, "tenant {tenant}");
        assert_eq!(solo.params.tenants, 0, "solo runs are not fleet-served");
    }
}

#[test]
fn fleet_tcp_session_lands_the_repo_pinned_checksum() {
    // The CI pin, reproduced through every new layer at once: the
    // bundled sample trace, default params, a shared fleet, the TCP
    // transport. The session checksum is computed over event payload
    // bytes only, so it must be the exact repo-wide constant.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/traces/sample_mixed.trace"
    ))
    .expect("bundled trace");
    let ops = parse_trace(&text).expect("parse bundled trace");
    with_fleet_server("pin", fleet_config(2), |_, addr, _| {
        let report =
            replay_tcp(addr, &SessionParams::defaults(), &ops, 1024).expect("fleet tcp run");
        assert_eq!(report.summary.row_ops, 1693);
        assert_eq!(report.checksum, 0x2361_aca9_1f8d_dfd0);
        verify_against_reference(&report, &ops, 1024).expect("pinned stream verifies");
    });
}

#[test]
fn a_cut_tenant_resumes_without_perturbing_its_neighbors() {
    // Tenant 0's TCP wire dies repeatedly; tenants 1 (Unix) and 2 (TCP)
    // run clean sessions at the same time on the same fleet. The victim
    // must resume to its solo checksum, and the neighbors must land
    // theirs as if nothing happened.
    let traces: Vec<Vec<CodicOp>> = (0..3u64)
        .map(|t| generate_mixed(6_000, 8192, 900 + t))
        .collect();
    let solo = solo_reports("cut", ServerConfig::default(), &traces);

    let fleet = with_fleet_server("cut", fleet_config(3), |socket, addr, _| {
        std::thread::scope(|scope| {
            let victim = scope.spawn(|| {
                let plan = ChaosPlan::new(0xf1ee_70c1).with_cut_after(80_000);
                let policy = ResumePolicy {
                    max_resumes: 32,
                    backoff_base: Duration::from_millis(1),
                };
                replay_resumable_with(
                    &SessionParams::defaults(),
                    &traces[0],
                    512,
                    policy,
                    |attempt| {
                        let stream = TcpStream::connect(addr)?;
                        stream.set_nodelay(true)?;
                        let (r, w) = chaos::wrap_tcp(stream, plan.for_attempt(attempt))?;
                        Ok((BufReader::new(r), BufWriter::new(w)))
                    },
                )
                .expect("cut tenant recovers")
            });
            let unix_neighbor = scope.spawn(|| {
                replay(socket, &SessionParams::defaults(), &traces[1], 512)
                    .expect("unix neighbor run")
            });
            let tcp_neighbor = scope.spawn(|| {
                replay_tcp(addr, &SessionParams::defaults(), &traces[2], 512)
                    .expect("tcp neighbor run")
            });
            vec![
                victim.join().expect("victim thread"),
                unix_neighbor.join().expect("unix neighbor thread"),
                tcp_neighbor.join().expect("tcp neighbor thread"),
            ]
        })
    });

    assert!(
        fleet[0].connections > 1,
        "the cut must actually fire (got {} connection(s))",
        fleet[0].connections
    );
    for (tenant, (ours, solo)) in fleet.iter().zip(&solo).enumerate() {
        assert_eq!(ours.summary, solo.summary, "tenant {tenant}");
        assert_eq!(ours.completions, solo.completions, "tenant {tenant}");
        verify_against_reference(ours, &traces[tenant], 512).expect("stream verifies");
    }
    assert_eq!(fleet[1].connections, 1, "neighbors never reconnect");
    assert_eq!(fleet[2].connections, 1, "neighbors never reconnect");
}

#[test]
fn device_misfires_compose_with_fleet_serving() {
    // A misfire-armed fleet: each tenant's lease seeds its fault plan
    // from lease-local shard indices, so every tenant sees exactly the
    // typed-failure stream a misfire-armed *private* server would give
    // its trace.
    let faulted = ServerConfig {
        fault: Some(FaultPlan::new(2024).with_misfires(6554)),
        ..ServerConfig::default()
    };
    let traces: Vec<Vec<CodicOp>> = (0..2u64)
        .map(|t| generate_mixed(4_000, 8192, 2024 + t))
        .collect();
    let solo = solo_reports("fault", faulted.clone(), &traces);
    assert!(
        solo.iter().all(|r| !r.failures.is_empty()),
        "the misfire plan must actually fire"
    );

    let fleet = with_fleet_server(
        "fault",
        ServerConfig {
            fleet_slots: 2,
            ..faulted
        },
        |socket, addr, _| {
            std::thread::scope(|scope| {
                let a = scope.spawn(|| {
                    replay(socket, &SessionParams::defaults(), &traces[0], 512).expect("tenant 0")
                });
                let b = scope.spawn(|| {
                    replay_tcp(addr, &SessionParams::defaults(), &traces[1], 512).expect("tenant 1")
                });
                vec![a.join().expect("tenant 0"), b.join().expect("tenant 1")]
            })
        },
    );

    for (tenant, (ours, solo)) in fleet.iter().zip(&solo).enumerate() {
        assert_eq!(ours.summary, solo.summary, "tenant {tenant}");
        assert_eq!(
            ours.failures, solo.failures,
            "tenant {tenant}: typed failures replay exactly"
        );
    }
}

/// Raw CRC-framed handshake over TCP: send `hello`, return the reply.
fn raw_hello(addr: SocketAddr, hello: &SessionParams) -> (TcpStream, Frame) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    write_frame_crc(&mut writer, &Frame::Hello(*hello)).expect("hello");
    writer.flush().expect("flush");
    let reply = read_frame_crc(&mut reader).expect("handshake reply");
    (stream, reply)
}

#[test]
fn claims_and_capacity_are_policed_at_the_door_and_slots_recycle() {
    let quick = ServerConfig {
        fleet_slots: 1,
        read_timeout_ms: 5,
        session_idle_ms: 40,
        ..ServerConfig::default()
    };
    let ops = generate_mixed(200, 8192, 5);
    with_fleet_server("police", quick, |_, addr, server| {
        // An oversized tenant-count claim dies with a typed Policy
        // error before anything is allocated from its numbers.
        let oversized = SessionParams {
            tenants: MAX_TENANT_CLAIM + 1,
            ..SessionParams::defaults()
        };
        let (_stream, reply) = raw_hello(addr, &oversized);
        match reply {
            Frame::Error { code, detail } => {
                assert_eq!(code, ErrorCode::Policy);
                assert!(detail.contains("claim out of range"), "detail: {detail}");
            }
            other => panic!("expected Policy error, got {other:?}"),
        }
        assert_eq!(server.free_tenant_slots(), Some(1), "nothing was allocated");

        // Hold the only slot open; the next Hello is told the fleet is
        // full with a typed Unavailable, not hung or dropped.
        let (held, reply) = raw_hello(addr, &SessionParams::defaults());
        match reply {
            Frame::HelloAck { token, .. } => assert_ne!(token, 0),
            other => panic!("expected HelloAck, got {other:?}"),
        }
        assert_eq!(server.free_tenant_slots(), Some(0));
        let (_stream, reply) = raw_hello(addr, &SessionParams::defaults());
        match reply {
            Frame::Error { code, detail } => {
                assert_eq!(code, ErrorCode::Unavailable);
                assert!(detail.contains("tenant slots"), "detail: {detail}");
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }

        // Vanish. The idle reaper frees the slot, and the next tenant
        // is served a full session on the recycled lease.
        drop(held);
        assert!(
            eventually(Duration::from_secs(5), || server.free_tenant_slots()
                == Some(1)),
            "the reaper must recycle the vanished tenant's slot"
        );
        let report = replay_tcp(addr, &SessionParams::defaults(), &ops, 64)
            .expect("recycled slot serves a full session");
        assert_eq!(report.completions.len(), ops.len());
        verify_against_reference(&report, &ops, 64).expect("recycled stream verifies");
    });
}
