//! Adversarial wire-protocol fuzzing: every frame type survives
//! arbitrary corruption with a typed [`ProtoError`], never a panic and
//! never an attacker-sized allocation.
//!
//! Three deterministic campaigns over a corpus holding every frame
//! variant:
//!
//! 1. **Exhaustive single-bit flips** — every bit of every encoded
//!    frame (length prefix included) is flipped once.
//! 2. **Seeded multi-byte corruption** — a splitmix64-driven storm
//!    overwrites 1–8 bytes per trial at seeded positions.
//! 3. **Exhaustive truncation** — every proper prefix of every frame.
//!
//! Every corrupted buffer is decoded two ways — the blocking
//! [`read_frame`] and the incremental [`FrameReader`] fed one byte at a
//! time — and both must agree: `Ok` or a typed error. Oversized length
//! prefixes must be rejected *before* any body allocation.

use std::io::Read;

use codic_core::fault::FaultCause;
use codic_core::ops::{CodicOp, VariantId};
use codic_server::proto::{
    crc32c, encode_body, read_frame, read_frame_crc, write_frame_crc, BatchAck, ErrorCode,
    FlushAck, Frame, FrameReader, ProtoError, ResumeAck, ResumeRequest, SessionEvent,
    SessionParams, Summary, WireCompletion, WireFailure, MAX_FRAME_LEN,
};

/// splitmix64: the same deterministic generator the fault layer uses.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One of every frame variant, with non-trivial payloads.
fn corpus() -> Vec<Frame> {
    let completion = WireCompletion {
        seq: 41,
        shard: 3,
        op: CodicOp::command(VariantId::DetZero, 4096),
        finish_cycle: 9_000,
        busy_cycles: 120,
        activations: 2,
        energy_nj: 17.25,
        fingerprint: 0,
    };
    // A compute completion carries the trailing row fingerprint, and a
    // two-address compute op stretches both payloads to their longest
    // layout — the fuzz campaigns must cover those variable tails too.
    let compute_completion = WireCompletion {
        seq: 43,
        shard: 0,
        op: CodicOp::Not {
            src_addr: 0x10_0000,
            dst_addr: 0x10_2000,
        },
        finish_cycle: 11_000,
        busy_cycles: 90,
        activations: 2,
        energy_nj: 5.5,
        fingerprint: 0xfeed_face_dead_beef,
    };
    let failure = WireFailure {
        seq: 42,
        shard: 1,
        op: CodicOp::RowCloneZero { row_addr: 8192 },
        at_cycle: 10_000,
        cause: FaultCause::Misfire,
        attempts: 3,
    };
    let compute_failure = WireFailure {
        seq: 44,
        shard: 2,
        op: CodicOp::RowCopy {
            src_addr: 0x10_0000,
            dst_addr: 0x10_4000,
        },
        at_cycle: 12_000,
        cause: FaultCause::Misfire,
        attempts: 1,
    };
    // The batched v3 transport: a mixed run stressing every unit
    // layout (kind byte + 40/48/56-byte completions, 29/37-byte
    // failures), plus the legal empty frame. The corruption campaigns
    // strike the count word and the kind bytes mid-walk.
    let events = Frame::Events(vec![
        SessionEvent::Completion(completion),
        SessionEvent::Failure(failure),
        SessionEvent::Completion(compute_completion),
        SessionEvent::Failure(compute_failure),
    ]);
    // A v5 params block with its whole QoS/tenancy tail lit up, so the
    // corruption campaigns strike meaningful bytes in the widened
    // layout, and a v4 block for the legacy 25-byte layout.
    let qos_params = SessionParams {
        qos_weight: 7,
        tenants: 2048,
        quota_ops: 1 << 19,
        target_rows_per_s: 1_000_000,
        ..SessionParams::defaults()
    };
    let v4_params = SessionParams {
        version: 4,
        ..SessionParams::defaults()
    };
    vec![
        Frame::Hello(SessionParams::defaults()),
        Frame::Hello(qos_params),
        Frame::Hello(v4_params),
        Frame::HelloAck {
            params: SessionParams {
                version: 3,
                ..SessionParams::defaults()
            },
            token: 0,
        },
        // The v4 ack carries the server-minted resume token.
        Frame::HelloAck {
            params: SessionParams::defaults(),
            token: 0x1122_3344_5566_7788,
        },
        // The v5 ack reports the fleet's honest QoS/tenancy grant.
        Frame::HelloAck {
            params: qos_params,
            token: 0x0be1_1e5e_d0c5_0b5e,
        },
        Frame::ResumeAck(ResumeAck {
            params: qos_params,
            token: 0x0451,
            next_seq: 8192,
            replay_events: 11,
            finished: 0,
        }),
        Frame::ResumeAck(ResumeAck {
            params: v4_params,
            token: 0x0452,
            next_seq: 1,
            replay_events: 0,
            finished: 1,
        }),
        Frame::Resume(ResumeRequest {
            version: 4,
            token: 0xfeed_beef_0451_0b5e,
            events_received: 123_456,
        }),
        Frame::ResumeAck(ResumeAck {
            params: SessionParams::defaults(),
            token: 0xfeed_beef_0451_0b5e,
            next_seq: 4096,
            replay_events: 37,
            finished: 1,
        }),
        Frame::Batch(vec![
            CodicOp::read(64),
            CodicOp::write(128),
            CodicOp::command(VariantId::Sig, 8192),
            CodicOp::LisaCloneZero { row_addr: 0 },
        ]),
        // A compute-only batch mixes 9- and 17-byte op units, so the
        // corruption campaigns strike the walking decode mid-unit.
        Frame::Batch(vec![
            CodicOp::RowInit {
                row_addr: 0x10_0000,
                ones: false,
            },
            CodicOp::RowInit {
                row_addr: 0x10_2000,
                ones: true,
            },
            CodicOp::MajAnd {
                row_addr: 0x10_0000,
            },
            CodicOp::MajOr {
                row_addr: 0x10_2000,
            },
            CodicOp::Not {
                src_addr: 0x10_0000,
                dst_addr: 0x10_4000,
            },
            CodicOp::RowCopy {
                src_addr: 0x10_4000,
                dst_addr: 0x10_6000,
            },
            CodicOp::RowFill {
                row_addr: 0x10_8000,
                pattern: 0xa5a5_a5a5_a5a5_a5a5,
            },
        ]),
        Frame::Flush,
        Frame::Bye,
        Frame::Completion(completion),
        Frame::Completion(compute_completion),
        Frame::Failed(failure),
        Frame::Failed(compute_failure),
        events,
        Frame::Events(Vec::new()),
        Frame::Batched(BatchAck {
            accepted: 4,
            seq_base: 12,
            emitted: 3,
            outstanding: 2,
        }),
        Frame::Flushed(FlushAck {
            emitted: 7,
            now_max: 42_000,
        }),
        Frame::Summary(Summary {
            ops: 100,
            row_ops: 60,
            failed: 3,
            max_finish_cycle: 123_456,
            total_energy_nj: 9.5,
            checksum: 0xdead_beef_cafe_f00d,
        }),
        Frame::Error {
            code: ErrorCode::Unavailable,
            detail: "shard 1 quarantined".to_string(),
        },
    ]
}

/// Encodes `frame` as it travels: length prefix + type byte + payload.
fn encode_wire(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::new();
    encode_body(frame, &mut body);
    let mut wire = Vec::with_capacity(4 + body.len());
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
    wire
}

/// Decodes `bytes` with the blocking reader; a panic fails the test.
fn decode_blocking(bytes: &[u8]) -> Result<Frame, ProtoError> {
    read_frame(&mut &bytes[..])
}

/// Decodes `bytes` with the incremental reader, one byte per poll.
fn decode_trickled(bytes: &[u8]) -> Result<Option<Frame>, ProtoError> {
    struct OneByte<'a>(&'a [u8]);
    impl Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.0.len().min(buf.len()).min(1);
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }
    let mut reader = OneByte(bytes);
    let mut frames = FrameReader::new();
    loop {
        match frames.poll(&mut reader) {
            Ok(Some(frame)) => return Ok(Some(frame)),
            // `Ok(0)` from an exhausted slice is EOF: either a clean
            // boundary (no partial frame) or an Io error mid-frame.
            Ok(None) if !frames.mid_frame() => return Ok(None),
            Ok(None) => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Both decoders on the same bytes; they must agree on accept/reject.
fn decode_both_ways(bytes: &[u8]) {
    let blocking = decode_blocking(bytes);
    let trickled = decode_trickled(bytes);
    match (&blocking, &trickled) {
        (Ok(a), Ok(Some(b))) => assert_eq!(a, b, "decoders disagree on an accepted frame"),
        (Err(_), Err(_)) => {}
        // EOF at a frame boundary: blocking read_frame reports Io(EOF),
        // the incremental reader reports "no frame yet".
        (Err(ProtoError::Io(_)), Ok(None)) => {}
        (a, b) => panic!("decoders disagree: blocking {a:?} vs trickled {b:?}"),
    }
}

#[test]
fn every_frame_round_trips_both_decoders() {
    for frame in corpus() {
        let wire = encode_wire(&frame);
        assert_eq!(decode_blocking(&wire).unwrap(), frame);
        assert_eq!(decode_trickled(&wire).unwrap(), Some(frame));
    }
}

#[test]
fn exhaustive_single_bit_flips_never_panic() {
    for frame in corpus() {
        let wire = encode_wire(&frame);
        for bit in 0..wire.len() * 8 {
            let mut mutant = wire.clone();
            mutant[bit / 8] ^= 1 << (bit % 8);
            decode_both_ways(&mutant);
        }
    }
}

#[test]
fn seeded_byte_storms_never_panic() {
    let mut seed = 0x0f0f_0f0f_1234_5678u64;
    for frame in corpus() {
        let wire = encode_wire(&frame);
        for trial in 0..512u64 {
            let mut mutant = wire.clone();
            seed = mix64(seed ^ trial);
            let strikes = 1 + (seed % 8) as usize;
            for strike in 0..strikes {
                let roll = mix64(seed ^ strike as u64);
                let pos = (roll % wire.len() as u64) as usize;
                mutant[pos] = (roll >> 32) as u8;
            }
            decode_both_ways(&mutant);
        }
    }
}

#[test]
fn exhaustive_truncations_never_panic() {
    for frame in corpus() {
        let wire = encode_wire(&frame);
        for cut in 0..wire.len() {
            // A truncated stream must either error (typed) or report
            // "no frame yet" — never yield a frame, never panic.
            let prefix = &wire[..cut];
            assert!(
                decode_blocking(prefix).is_err(),
                "a {cut}-byte prefix of a {}-byte frame decoded",
                wire.len()
            );
            if let Ok(Some(f)) = decode_trickled(prefix) {
                panic!("truncated stream yielded {f:?}");
            }
        }
    }
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    // A length prefix far past the cap, backed by only 8 real bytes: if
    // either decoder tried to allocate or read the claimed body first,
    // this would OOM or hang — instead both reject on the prefix alone.
    for claimed in [MAX_FRAME_LEN + 1, u32::MAX / 2, u32::MAX] {
        let mut wire = claimed.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 8]);
        match decode_blocking(&wire) {
            Err(ProtoError::Oversized(len)) => assert_eq!(len, claimed),
            other => panic!("expected Oversized, got {other:?}"),
        }
        match decode_trickled(&wire) {
            Err(ProtoError::Oversized(len)) => assert_eq!(len, claimed),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}

#[test]
fn oversized_event_counts_are_rejected_before_allocation() {
    // An Events frame whose count word claims billions of units over a
    // tiny payload: the decoder's count-versus-length pre-check must
    // reject it before reserving a single unit of `Vec` capacity.
    const EVENTS_TAG: u8 = 0x88;
    for claimed in [u32::MAX, u32::MAX / 2, 1_000_000] {
        let mut body = vec![EVENTS_TAG];
        body.extend_from_slice(&claimed.to_le_bytes());
        body.extend_from_slice(&[0u8; 16]); // far fewer bytes than one unit per claim
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&body);
        match decode_blocking(&wire) {
            Err(ProtoError::BadLength { tag, .. }) => assert_eq!(tag, EVENTS_TAG),
            other => panic!("expected BadLength, got {other:?}"),
        }
        match decode_trickled(&wire) {
            Err(ProtoError::BadLength { tag, .. }) => assert_eq!(tag, EVENTS_TAG),
            other => panic!("expected BadLength, got {other:?}"),
        }
    }
}

#[test]
fn zero_length_frames_are_typed_errors() {
    let wire = 0u32.to_le_bytes().to_vec();
    assert!(matches!(decode_blocking(&wire), Err(ProtoError::Empty)));
    assert!(matches!(decode_trickled(&wire), Err(ProtoError::Empty)));
}

// ---------------------------------------------------------------------
// Protocol v4: the CRC32C-trailed framing. Same corpus, same decoder
// pair (blocking `read_frame_crc` and a CRC-armed `FrameReader`), plus
// the campaigns only a checksummed transport can promise: every
// single-bit flip is *detected*, not merely survived.
// ---------------------------------------------------------------------

/// Encodes `frame` as a v4 session sends it: the length prefix covers
/// type byte + payload + the 4-byte little-endian CRC32C trailer.
fn encode_wire_crc(frame: &Frame) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame_crc(&mut wire, frame).expect("encode to Vec");
    wire
}

/// Decodes `bytes` with the blocking CRC reader.
fn decode_blocking_crc(bytes: &[u8]) -> Result<Frame, ProtoError> {
    read_frame_crc(&mut &bytes[..])
}

/// Decodes `bytes` with a CRC-armed incremental reader, one byte per
/// poll.
fn decode_trickled_crc(bytes: &[u8]) -> Result<Option<Frame>, ProtoError> {
    struct OneByte<'a>(&'a [u8]);
    impl Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.0.len().min(buf.len()).min(1);
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }
    let mut reader = OneByte(bytes);
    let mut frames = FrameReader::new();
    frames.set_crc(true);
    loop {
        match frames.poll(&mut reader) {
            Ok(Some(frame)) => return Ok(Some(frame)),
            Ok(None) if !frames.mid_frame() => return Ok(None),
            Ok(None) => continue,
            Err(e) => return Err(e),
        }
    }
}

#[test]
fn crc_wire_has_the_documented_trailer_layout() {
    // The trailer is crc32c over the body (type byte + payload), stored
    // little-endian, and *included* in the length prefix — exactly what
    // docs/PROTOCOL.md promises. Spot-check the whole corpus.
    for frame in corpus() {
        let bare = encode_wire(&frame);
        let wire = encode_wire_crc(&frame);
        let body_len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert_eq!(body_len, wire.len() - 4, "length covers body + trailer");
        assert_eq!(body_len, bare.len(), "CRC framing adds exactly 4 bytes");
        let body = &wire[4..wire.len() - 4];
        assert_eq!(body, &bare[4..], "body bytes identical to bare framing");
        let trailer = u32::from_le_bytes(wire[wire.len() - 4..].try_into().unwrap());
        assert_eq!(trailer, crc32c(body), "trailer is crc32c(body), LE");
    }
}

#[test]
fn every_frame_round_trips_both_crc_decoders() {
    for frame in corpus() {
        let wire = encode_wire_crc(&frame);
        assert_eq!(decode_blocking_crc(&wire).unwrap(), frame);
        assert_eq!(decode_trickled_crc(&wire).unwrap(), Some(frame));
    }
}

#[test]
fn exhaustive_single_bit_flips_are_always_detected_under_crc() {
    // The stronger v4 promise: a flipped bit never *decodes*. Flips in
    // the body or trailer must surface as the typed Crc error (CRC32C
    // detects every single-bit error by construction); flips in the
    // length prefix may hit any typed error — but no flip, anywhere,
    // may ever yield a frame.
    for frame in corpus() {
        let wire = encode_wire_crc(&frame);
        for bit in 0..wire.len() * 8 {
            let mut mutant = wire.clone();
            mutant[bit / 8] ^= 1 << (bit % 8);
            let blocking = decode_blocking_crc(&mutant);
            let trickled = decode_trickled_crc(&mutant);
            assert!(
                blocking.is_err(),
                "bit {bit} flip decoded to {blocking:?} under CRC framing"
            );
            if let Ok(Some(f)) = trickled {
                panic!("bit {bit} flip trickle-decoded to {f:?} under CRC framing");
            }
            if bit >= 32 {
                // Past the length prefix the damage is inside the
                // checksummed region: the error must name the CRC.
                assert!(
                    matches!(blocking, Err(ProtoError::Crc { .. })),
                    "bit {bit} body flip gave {blocking:?}, expected Crc"
                );
            }
        }
    }
}

#[test]
fn seeded_byte_storms_never_decode_under_crc() {
    // Multi-byte storms against the checksummed framing: corruption may
    // surface as any typed error, but a damaged buffer never yields a
    // frame and never panics.
    let mut seed = 0x5eed_c4c4_9876_4321u64;
    for frame in corpus() {
        let wire = encode_wire_crc(&frame);
        for trial in 0..512u64 {
            let mut mutant = wire.clone();
            seed = mix64(seed ^ trial);
            let strikes = 1 + (seed % 8) as usize;
            let mut touched = false;
            for strike in 0..strikes {
                let roll = mix64(seed ^ strike as u64);
                let pos = (roll % wire.len() as u64) as usize;
                let byte = (roll >> 32) as u8;
                touched |= mutant[pos] != byte;
                mutant[pos] = byte;
            }
            if !touched {
                continue; // the storm happened to rewrite identical bytes
            }
            assert!(decode_blocking_crc(&mutant).is_err());
            if let Ok(Some(f)) = decode_trickled_crc(&mutant) {
                panic!("storm trial {trial} trickle-decoded to {f:?}");
            }
        }
    }
}

#[test]
fn exhaustive_crc_truncations_never_yield_a_frame() {
    // Every proper prefix of every CRC-framed frame — the mid-frame cut
    // a chaos transport or a killed client leaves on the wire. The
    // blocking reader must error; the incremental reader must error or
    // keep waiting; neither may produce a frame.
    for frame in corpus() {
        let wire = encode_wire_crc(&frame);
        for cut in 0..wire.len() {
            let prefix = &wire[..cut];
            assert!(
                decode_blocking_crc(prefix).is_err(),
                "a {cut}-byte prefix of a {}-byte CRC frame decoded",
                wire.len()
            );
            if let Ok(Some(f)) = decode_trickled_crc(prefix) {
                panic!("truncated CRC stream yielded {f:?}");
            }
        }
    }
}

#[test]
fn resume_frames_survive_focused_truncation_and_storm_corpora() {
    // The resume handshake is what a recovering client leans on, so it
    // gets its own dense pass on top of the full-corpus campaigns:
    // every truncation and a 4096-trial storm per frame, both framings.
    let frames = [
        Frame::Resume(ResumeRequest {
            version: 4,
            token: u64::MAX,
            events_received: u64::MAX,
        }),
        Frame::Resume(ResumeRequest {
            version: 0,
            token: 0,
            events_received: 0,
        }),
        Frame::ResumeAck(ResumeAck {
            params: SessionParams::defaults(),
            token: 1,
            next_seq: u64::MAX,
            replay_events: u64::MAX,
            finished: u8::MAX,
        }),
    ];
    let mut seed = 0x4e5c_0de5_0da2_71ffu64;
    for frame in &frames {
        let bare = encode_wire(frame);
        let wire = encode_wire_crc(frame);
        assert_eq!(decode_blocking_crc(&wire).unwrap(), *frame);
        for cut in 0..wire.len() {
            assert!(decode_blocking_crc(&wire[..cut]).is_err());
            if cut < bare.len() {
                assert!(decode_blocking(&bare[..cut]).is_err());
            }
        }
        for trial in 0..4096u64 {
            let mut mutant = wire.clone();
            seed = mix64(seed ^ trial);
            let pos = (seed % wire.len() as u64) as usize;
            let byte = (seed >> 32) as u8;
            if mutant[pos] == byte {
                continue;
            }
            mutant[pos] = byte;
            assert!(
                decode_blocking_crc(&mutant).is_err(),
                "storm trial {trial} decoded a corrupted resume frame"
            );
        }
    }
}

#[test]
fn oversized_journal_window_claims_decode_without_allocation() {
    // `events_received` is an absolute count the *server* checks
    // against the journal window with pure arithmetic; the decoder must
    // treat it as opaque data — a u64::MAX claim is an 18-byte frame,
    // not an allocation request. (The server-side honest rejection is
    // pinned in the server suite.)
    let greedy = Frame::Resume(ResumeRequest {
        version: 4,
        token: 0x0451,
        events_received: u64::MAX,
    });
    let wire = encode_wire_crc(&greedy);
    assert!(wire.len() < 32, "Resume stays fixed-size: {}", wire.len());
    assert_eq!(decode_blocking_crc(&wire).unwrap(), greedy);
    assert_eq!(decode_trickled_crc(&wire).unwrap(), Some(greedy));
}

// ---------------------------------------------------------------------
// Protocol v5: the QoS/tenancy tail. The widened params block rides in
// the full-corpus campaigns above; these pins nail the exact layouts,
// the version-versus-length cross-check, and the "claims are data, not
// allocations" property the shared-fleet server leans on.
// ---------------------------------------------------------------------

#[test]
fn v5_frames_have_the_documented_widened_layouts() {
    // Body sizes (type byte + payload) pinned straight from
    // docs/PROTOCOL.md: params 25 → 32 bytes at v5, HelloAck payload
    // 25/33/40 across v3/v4/v5, ResumeAck payload 50/57 across v4/v5.
    let v5 = SessionParams {
        qos_weight: 9,
        tenants: 33,
        quota_ops: 70_000,
        ..SessionParams::defaults()
    };
    let v4 = SessionParams {
        version: 4,
        ..SessionParams::defaults()
    };
    let v3 = SessionParams {
        version: 3,
        ..SessionParams::defaults()
    };
    let body_len = |frame: &Frame| encode_wire(frame).len() - 4;
    assert_eq!(body_len(&Frame::Hello(v5)), 1 + 32);
    assert_eq!(body_len(&Frame::Hello(v4)), 1 + 25);
    let ack = |params: &SessionParams, token| Frame::HelloAck {
        params: *params,
        token,
    };
    assert_eq!(body_len(&ack(&v3, 0)), 1 + 25);
    assert_eq!(body_len(&ack(&v4, 7)), 1 + 33);
    assert_eq!(body_len(&ack(&v5, 7)), 1 + 40);
    let rack = |params: &SessionParams| {
        Frame::ResumeAck(ResumeAck {
            params: *params,
            token: 1,
            next_seq: 2,
            replay_events: 3,
            finished: 0,
        })
    };
    assert_eq!(body_len(&rack(&v4)), 1 + 50);
    assert_eq!(body_len(&rack(&v5)), 1 + 57);

    // The QoS/tenancy tail sits at pinned offsets 25/26/28 of the
    // params block and round-trips exactly, both framings.
    let wire = encode_wire(&Frame::Hello(v5));
    let params = &wire[5..]; // length prefix + HELLO tag
    assert_eq!(params[25], 9);
    assert_eq!(u16::from_le_bytes(params[26..28].try_into().unwrap()), 33);
    assert_eq!(
        u32::from_le_bytes(params[28..32].try_into().unwrap()),
        70_000
    );
    let hello = Frame::Hello(v5);
    assert_eq!(decode_blocking(&wire).unwrap(), hello);
    let crc_wire = encode_wire_crc(&hello);
    assert_eq!(decode_blocking_crc(&crc_wire).unwrap(), hello);
    assert_eq!(decode_trickled_crc(&crc_wire).unwrap(), Some(hello));
}

#[test]
fn params_version_and_length_mismatches_are_typed_errors() {
    // The params block's own version field selects its layout; a block
    // whose length contradicts its claimed version must die as a typed
    // BadLength in every carrier frame — a v5 header may not smuggle a
    // short block past the tail reads, nor a v4 header an oversized one.
    const HELLO_TAG: u8 = 0x01;
    const HELLO_ACK_TAG: u8 = 0x81;
    let frame_of = |body: Vec<u8>| {
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&body);
        wire
    };
    let params_claiming = |version: u16, len: usize| {
        let mut block = vec![0u8; len];
        block[0..2].copy_from_slice(&version.to_le_bytes());
        block[20] = 2; // refresh: a legal default either way
        block
    };
    for (version, len) in [(5u16, 25usize), (4, 32), (5, 31), (5, 33), (2, 32)] {
        let mut body = vec![HELLO_TAG];
        body.extend_from_slice(&params_claiming(version, len));
        let wire = frame_of(body);
        match decode_blocking(&wire) {
            Err(ProtoError::BadLength { tag, got }) => {
                assert_eq!(tag, HELLO_TAG);
                assert_eq!(got, len, "v{version} Hello with a {len}-byte block");
            }
            other => panic!("v{version}/{len}B Hello decoded: {other:?}"),
        }
        // The same mismatched block inside a HelloAck (token appended
        // per the *claimed* version) is rejected the same way.
        let mut body = vec![HELLO_ACK_TAG];
        body.extend_from_slice(&params_claiming(version, len));
        if version >= 4 {
            body.extend_from_slice(&7u64.to_le_bytes());
        }
        match decode_blocking(&frame_of(body)) {
            Err(ProtoError::BadLength { tag, .. }) => assert_eq!(tag, HELLO_ACK_TAG),
            other => panic!("v{version}/{len}B HelloAck decoded: {other:?}"),
        }
    }
}

#[test]
fn oversized_tenant_and_quota_claims_decode_as_data_not_allocation() {
    // `tenants` and `quota_ops` are *claims* the server polices against
    // MAX_TENANT_CLAIM / MAX_QUOTA_CLAIM before allocating anything
    // (pinned end to end in the fleet suite); the decoder's only job is
    // to carry them. A maxed-out claim is a fixed 37-byte wire frame,
    // not an allocation request, under both framings.
    let greedy = Frame::Hello(SessionParams {
        qos_weight: u8::MAX,
        tenants: u16::MAX,
        quota_ops: u32::MAX,
        ..SessionParams::defaults()
    });
    let wire = encode_wire(&greedy);
    assert_eq!(wire.len(), 4 + 1 + 32, "claims never change the layout");
    assert_eq!(decode_blocking(&wire).unwrap(), greedy);
    assert_eq!(decode_trickled(&wire).unwrap(), Some(greedy.clone()));
    let crc_wire = encode_wire_crc(&greedy);
    assert_eq!(decode_blocking_crc(&crc_wire).unwrap(), greedy);
    assert_eq!(decode_trickled_crc(&crc_wire).unwrap(), Some(greedy));
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation_under_crc() {
    for claimed in [MAX_FRAME_LEN + 1, u32::MAX / 2, u32::MAX] {
        let mut wire = claimed.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 8]);
        match decode_blocking_crc(&wire) {
            Err(ProtoError::Oversized(len)) => assert_eq!(len, claimed),
            other => panic!("expected Oversized, got {other:?}"),
        }
        match decode_trickled_crc(&wire) {
            Err(ProtoError::Oversized(len)) => assert_eq!(len, claimed),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
