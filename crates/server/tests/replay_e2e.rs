//! End-to-end replay serving: a recorded ≥100k-row mixed
//! secure-deallocation / cold-boot trace over a real Unix socket, with
//! the typed completion stream required to be **bit-identical** to a
//! direct `DevicePool::submit_all_async` run — same cycles, same energy
//! bits, completion order preserved.

use std::collections::HashMap;
use std::path::PathBuf;

use codic_core::ops::CodicOp;
use codic_core::pool::DevicePool;
use codic_server::client::{replay, verify_against_reference};
use codic_server::proto::{SessionParams, WireCompletion};
use codic_server::server::{ReplayServer, ServerConfig};
use codic_server::trace::{format_trace, generate_mixed, parse_trace};

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("codic-e2e-{tag}-{}.sock", std::process::id()))
}

/// Serves `sessions` connections of the default server on a private
/// socket, runs `client` against it, and joins the server.
fn with_server<R>(
    tag: &str,
    config: ServerConfig,
    sessions: usize,
    client: impl FnOnce(&PathBuf) -> R,
) -> R {
    let socket = temp_socket(tag);
    let server = ReplayServer::bind(&socket, config).expect("bind temp socket");
    let serving = std::thread::spawn(move || {
        server.serve_connections(sessions).expect("serve");
    });
    let out = client(&socket);
    serving.join().expect("server thread");
    out
}

/// The direct run the acceptance criterion names: the same batches
/// through bare `DevicePool::submit_all_async`, one `drive()` at the
/// end, no serving loop in between. Returns `(shard, completion)` per
/// sequence number.
fn direct_submit_all_async(
    params: &SessionParams,
    ops: &[CodicOp],
    batch: usize,
) -> Vec<(u16, codic_core::device::OpCompletion)> {
    let config = ServerConfig::device_config(params);
    let mut pool = DevicePool::new(params.shards as usize, &config);
    let shards: Vec<u16> = ops.iter().map(|&op| pool.shard_of(op) as u16).collect();
    let mut futures = Vec::with_capacity(ops.len());
    for chunk in ops.chunks(batch) {
        futures.extend(pool.submit_all_async(chunk).expect("trace is in range"));
    }
    pool.drive();
    shards
        .into_iter()
        .zip(
            futures
                .iter_mut()
                .map(|f| f.try_take().expect("driven to idle")),
        )
        .collect()
}

#[test]
fn hundred_k_row_trace_round_trips_bit_identical_to_the_direct_run() {
    // A deterministic mixed trace with ≥100k row operations, through the
    // text format (so the file round-trip is part of the path under test).
    let ops = parse_trace(&format_trace(&generate_mixed(160_000, 8192, 2024))).expect("trace");
    let row_ops = ops.iter().filter(|op| op.row_op_kind().is_some()).count();
    assert!(
        row_ops >= 100_000,
        "the trace must carry at least 100k row operations, got {row_ops}"
    );
    let batch = 1024;

    let report = with_server("100k", ServerConfig::default(), 1, |socket| {
        replay(socket, &SessionParams::defaults(), &ops, batch).expect("replay session")
    });
    assert_eq!(report.summary.ops, ops.len() as u64);
    assert_eq!(report.summary.row_ops, row_ops as u64);
    assert_eq!(report.checksum, report.summary.checksum);

    // Bit-identity against the serving discipline replayed in process.
    verify_against_reference(&report, &ops, batch).expect("reference verification");

    // Bit-identity against the *direct* submit_all_async run: per
    // sequence number the same shard, finish cycle, and energy bits.
    let direct = direct_submit_all_async(&report.params, &ops, batch);
    let by_seq: HashMap<u64, &WireCompletion> =
        report.completions.iter().map(|c| (c.seq, c)).collect();
    assert_eq!(
        by_seq.len(),
        direct.len(),
        "every op completed exactly once"
    );
    let mut total_energy = 0.0f64;
    for (seq, (shard, completion)) in direct.iter().enumerate() {
        let served = by_seq[&(seq as u64)];
        assert_eq!(served.shard, *shard, "seq {seq} shard");
        assert_eq!(served.op, completion.op, "seq {seq} op");
        assert_eq!(
            served.finish_cycle, completion.finish_cycle,
            "seq {seq} finish cycle"
        );
        assert_eq!(
            served.energy_nj.to_bits(),
            completion.cost.energy_nj.to_bits(),
            "seq {seq} energy bits"
        );
        assert_eq!(served.busy_cycles, completion.cost.busy_cycles);
        assert_eq!(served.activations, completion.cost.activations);
        total_energy += completion.cost.energy_nj;
    }
    assert_eq!(
        report.summary.total_energy_nj.to_bits(),
        report
            .completions
            .iter()
            .map(|c| c.energy_nj)
            .sum::<f64>()
            .to_bits(),
        "summary energy is the exact fold of the stream"
    );
    assert!((report.summary.total_energy_nj - total_energy).abs() < 1e-6);

    // Completion order preserved: per shard, the served stream is in
    // nondecreasing finish-cycle order — the shard's true completion
    // order — and covers exactly the shard's direct-run completions.
    for shard in 0..report.params.shards {
        let cycles: Vec<u64> = report
            .completions
            .iter()
            .filter(|c| c.shard == shard)
            .map(|c| c.finish_cycle)
            .collect();
        assert!(
            cycles.windows(2).all(|w| w[0] <= w[1]),
            "shard {shard} stream is in completion order"
        );
        let direct_count = direct.iter().filter(|(s, _)| *s == shard).count();
        assert_eq!(cycles.len(), direct_count, "shard {shard} coverage");
        assert!(!cycles.is_empty(), "shard {shard} served traffic");
    }
}

#[test]
fn bulk_bitwise_compute_replays_value_verified_over_the_socket() {
    use codic_core::data::{row_fingerprint, RowWords, WORDS_PER_ROW};
    use codic_core::simd::{reference, SimdLayout, VecOp};
    use codic_dram::geometry::DramGeometry;

    // A compute region spanning the top 64 rows of the default module,
    // with an 8-bit-lane layout inside it.
    let compute_rows = 64u64;
    let total_rows = DramGeometry::module_mib(64).total_rows();
    let base = (total_rows - compute_rows) * DramGeometry::ROW_BYTES;
    let layout = SimdLayout::new(base, 8);
    assert!(layout.rows_needed() <= compute_rows);
    let a: Vec<u64> = (0..8)
        .map(|i| 0x9e37_79b9_7f4a_7c15u64.rotate_left(i * 7))
        .collect();
    let b: Vec<u64> = (0..8)
        .map(|i| 0xc2b2_ae35_27d4_eb4fu64.rotate_left(i * 11))
        .collect();

    // Each planned VecOp, with the expected fingerprint of every result
    // row — computed from the *scalar* reference, independent of the
    // data plane the server runs.
    let mut ops = Vec::new();
    let mut expected = Vec::new(); // (seq of last write to D[bit], fingerprint)
    for vec_op in VecOp::ALL {
        ops.extend(layout.seed(&a, &b));
        let plan = layout.plan(vec_op);
        let plan_base = ops.len();
        let want = reference(vec_op, &a, &b);
        for bit in 0..layout.bits() {
            let last_write = plan
                .iter()
                .rposition(|op| {
                    op.written_rows()
                        .row_addrs()
                        .any(|r| r == layout.d_row(bit))
                })
                .expect("every result row is written");
            let mut row: RowWords = [0u64; WORDS_PER_ROW];
            row.fill(want[bit as usize]);
            expected.push((plan_base + last_write, row_fingerprint(&row)));
        }
        ops.extend(plan);
    }
    // The text format is part of the path under test.
    let ops = parse_trace(&format_trace(&ops)).expect("bitwise trace round-trips");

    let hello = SessionParams {
        compute_rows: compute_rows as u32,
        ..SessionParams::defaults()
    };
    let report = with_server("bitwise", ServerConfig::default(), 1, |socket| {
        replay(socket, &hello, &ops, 256).expect("bitwise session")
    });
    assert_eq!(report.params.compute_rows, compute_rows as u32);
    assert_eq!(report.summary.ops, ops.len() as u64);
    assert_eq!(report.summary.failed, 0);

    // Bit-identity (cycles, energy, order, fingerprints) against the
    // in-process reference.
    verify_against_reference(&report, &ops, 256).expect("bitwise stream verifies");

    // Value verification: the served fingerprint of the last write to
    // each result row must equal the fingerprint of the row the scalar
    // reference predicts.
    let by_seq: HashMap<u64, &WireCompletion> =
        report.completions.iter().map(|c| (c.seq, c)).collect();
    for (seq, fingerprint) in expected {
        let served = by_seq[&(seq as u64)];
        assert_eq!(
            served.fingerprint, fingerprint,
            "seq {seq} ({:?}): served result row diverges from the scalar reference",
            served.op
        );
    }

    // Compute completions carry a real fingerprint on the wire; classic
    // ops in other sessions still serve the 40-byte payload (pinned by
    // the fault-free smoke), so the two families coexist.
    assert!(report.completions.iter().all(|c| c.op.is_compute()));
}

#[test]
fn concurrent_sessions_are_independent_and_both_verify() {
    let ops_a = generate_mixed(6_000, 8192, 11);
    let ops_b = generate_mixed(6_000, 8192, 22);
    let (report_a, report_b) = with_server("pair", ServerConfig::default(), 2, |socket| {
        let sock_a = socket.clone();
        let a = std::thread::spawn(move || {
            replay(&sock_a, &SessionParams::defaults(), &ops_a, 512).expect("session a")
        });
        let sock_b = socket.clone();
        let b = std::thread::spawn(move || {
            replay(&sock_b, &SessionParams::defaults(), &ops_b, 512).expect("session b")
        });
        (a.join().expect("a"), b.join().expect("b"))
    });
    verify_against_reference(&report_a, &generate_mixed(6_000, 8192, 11), 512).expect("a verifies");
    verify_against_reference(&report_b, &generate_mixed(6_000, 8192, 22), 512).expect("b verifies");
    assert_ne!(
        report_a.checksum, report_b.checksum,
        "different traces produce different streams"
    );
}

#[test]
fn policy_rejections_surface_as_error_frames() {
    // A destructive command outside the 64 MiB module: the batch is
    // rejected all-or-nothing and the server answers with a Policy error.
    let ops = vec![CodicOp::command(
        codic_core::ops::VariantId::DetZero,
        1 << 40,
    )];
    let err = with_server("policy", ServerConfig::default(), 1, |socket| {
        replay(socket, &SessionParams::defaults(), &ops, 16).expect_err("must be rejected")
    });
    match err {
        codic_server::client::ClientError::Server { code, detail } => {
            assert_eq!(code, codic_server::proto::ErrorCode::Policy);
            assert!(detail.contains("safe range"), "{detail}");
        }
        other => panic!("expected a server policy error, got {other}"),
    }
}

#[test]
fn rate_governor_paces_the_session_without_perturbing_cycles() {
    let ops = generate_mixed(2_000, 8192, 5);
    let capped = SessionParams {
        target_rows_per_s: 20_000,
        ..SessionParams::defaults()
    };
    let report = with_server("governor", ServerConfig::default(), 1, |socket| {
        replay(socket, &capped, &ops, 256).expect("capped session")
    });
    assert_eq!(report.params.target_rows_per_s, 20_000);
    assert!(
        report.host_seconds >= 0.08,
        "2000 rows at 20k rows/s must take ≥ ~0.1 s of host time, took {:.3} s",
        report.host_seconds
    );
    // Pacing is host-side only: the DRAM timeline stays bit-identical.
    verify_against_reference(&report, &ops, 256).expect("capped stream verifies");
    let uncapped = with_server("uncapped", ServerConfig::default(), 1, |socket| {
        replay(socket, &SessionParams::defaults(), &ops, 256).expect("uncapped session")
    });
    assert_eq!(report.checksum, uncapped.checksum);
    assert_eq!(
        report.summary.max_finish_cycle,
        uncapped.summary.max_finish_cycle
    );
}

#[test]
fn client_can_bound_its_outstanding_window() {
    let ops = generate_mixed(4_000, 8192, 9);
    let tight = SessionParams {
        max_outstanding: 32,
        ..SessionParams::defaults()
    };
    let report = with_server("bounded", ServerConfig::default(), 1, |socket| {
        replay(socket, &tight, &ops, 256).expect("bounded session")
    });
    assert_eq!(report.params.max_outstanding, 32);
    assert_eq!(report.summary.ops, 4_000);
    // The tighter window changes pacing, never results: the in-process
    // reference under the same params stays bit-identical.
    verify_against_reference(&report, &ops, 256).expect("bounded stream verifies");
}
