//! Session edge cases: degenerate windows, empty work units, and the
//! zero-completion session — the corners where backpressure and tally
//! bookkeeping are easiest to get wrong.

use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use codic_server::client::{replay, verify_against_reference};
use codic_server::proto::{read_frame, write_frame, Frame, SessionEvent, SessionParams};
use codic_server::server::{ReplayServer, ServerConfig};
use codic_server::trace::generate_mixed;

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("codic-edge-{tag}-{}.sock", std::process::id()))
}

fn with_server<R>(
    tag: &str,
    config: ServerConfig,
    sessions: usize,
    client: impl FnOnce(&PathBuf) -> R,
) -> R {
    let socket = temp_socket(tag);
    let server = ReplayServer::bind(&socket, config).expect("bind temp socket");
    let serving = std::thread::spawn(move || {
        server.serve_connections(sessions).expect("serve");
    });
    let out = client(&socket);
    serving.join().expect("server thread");
    out
}

/// Bare-framed session parameters: protocol v4 CRC-frames every reply,
/// so raw frame-level choreography with `read_frame` pins v3 (these
/// edges are framing-independent; v4 has its own CRC-aware suites).
fn bare_params() -> SessionParams {
    SessionParams {
        version: 3,
        ..SessionParams::defaults()
    }
}

/// A raw protocol session: Hello, then hand the typed reader/writer to
/// the closure for frame-level choreography.
fn raw_session<R>(
    socket: &PathBuf,
    hello: &SessionParams,
    drive: impl FnOnce(&mut BufReader<UnixStream>, &mut BufWriter<UnixStream>) -> R,
) -> R {
    let stream = UnixStream::connect(socket).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &Frame::Hello(*hello)).expect("hello");
    writer.flush().expect("flush");
    match read_frame(&mut reader).expect("hello ack") {
        Frame::HelloAck { .. } => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    drive(&mut reader, &mut writer)
}

#[test]
fn outstanding_window_of_one_fully_serializes_and_verifies() {
    // The tightest legal window: every operation must retire before the
    // next is admitted. Pacing changes; results must not.
    let ops = generate_mixed(600, 8192, 31);
    let tight = SessionParams {
        max_outstanding: 1,
        ..SessionParams::defaults()
    };
    let report = with_server("window1", ServerConfig::default(), 1, |socket| {
        replay(socket, &tight, &ops, 128).expect("window-1 session")
    });
    assert_eq!(report.params.max_outstanding, 1);
    assert_eq!(report.summary.ops, 600);
    assert_eq!(report.summary.failed, 0);
    verify_against_reference(&report, &ops, 128).expect("window-1 stream verifies");
}

#[test]
fn empty_batch_is_acked_without_consuming_sequence_numbers() {
    let ops = generate_mixed(8, 8192, 3);
    with_server("emptybatch", ServerConfig::default(), 1, |socket| {
        raw_session(socket, &bare_params(), |reader, writer| {
            // An empty batch: legal, acked, and free.
            write_frame(writer, &Frame::Batch(Vec::new())).expect("send");
            writer.flush().expect("flush");
            let ack = match read_frame(reader).expect("ack") {
                Frame::Batched(ack) => ack,
                other => panic!("expected Batched, got {other:?}"),
            };
            assert_eq!(ack.accepted, 0);
            assert_eq!(ack.emitted, 0);
            assert_eq!(ack.seq_base, 0, "no sequence numbers consumed");
            assert_eq!(ack.outstanding, 0);

            // The next real batch starts exactly where the session began.
            write_frame(writer, &Frame::Batch(ops.clone())).expect("send");
            writer.flush().expect("flush");
            loop {
                match read_frame(reader).expect("burst") {
                    Frame::Completion(c) => assert!(c.seq < ops.len() as u64),
                    Frame::Events(events) => {
                        for event in events {
                            match event {
                                SessionEvent::Completion(c) => {
                                    assert!(c.seq < ops.len() as u64)
                                }
                                SessionEvent::Failure(f) => {
                                    panic!("fault-free session failed seq {}", f.seq)
                                }
                            }
                        }
                    }
                    Frame::Batched(ack) => {
                        assert_eq!(ack.seq_base, 0, "empty batch consumed nothing");
                        assert_eq!(ack.accepted, ops.len() as u32);
                        break;
                    }
                    other => panic!("expected Completion/Events/Batched, got {other:?}"),
                }
            }
            write_frame(writer, &Frame::Bye).expect("bye");
            writer.flush().expect("flush");
            loop {
                match read_frame(reader).expect("tail") {
                    Frame::Completion(_) | Frame::Events(_) => {}
                    Frame::Summary(s) => {
                        assert_eq!(s.ops, ops.len() as u64);
                        break;
                    }
                    other => panic!("expected Completion/Events/Summary, got {other:?}"),
                }
            }
        });
    });
}

#[test]
fn flush_with_nothing_in_flight_acks_zero() {
    with_server("idleflush", ServerConfig::default(), 1, |socket| {
        raw_session(socket, &bare_params(), |reader, writer| {
            for _ in 0..2 {
                write_frame(writer, &Frame::Flush).expect("send");
                writer.flush().expect("flush");
                match read_frame(reader).expect("ack") {
                    Frame::Flushed(ack) => {
                        assert_eq!(ack.emitted, 0, "nothing was in flight");
                    }
                    other => panic!("expected Flushed, got {other:?}"),
                }
            }
            write_frame(writer, &Frame::Bye).expect("bye");
            writer.flush().expect("flush");
            match read_frame(reader).expect("summary") {
                Frame::Summary(s) => assert_eq!(s.ops, 0),
                other => panic!("expected Summary, got {other:?}"),
            }
        });
    });
}

#[test]
fn zero_completion_session_reports_the_empty_checksum() {
    // FNV-1a over zero bytes is the offset basis: a session that never
    // streamed a frame must say exactly that, not zero.
    const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    with_server("zerosession", ServerConfig::default(), 1, |socket| {
        raw_session(socket, &bare_params(), |reader, writer| {
            write_frame(writer, &Frame::Bye).expect("bye");
            writer.flush().expect("flush");
            match read_frame(reader).expect("summary") {
                Frame::Summary(s) => {
                    assert_eq!(s.ops, 0);
                    assert_eq!(s.row_ops, 0);
                    assert_eq!(s.failed, 0);
                    assert_eq!(s.max_finish_cycle, 0);
                    assert_eq!(s.total_energy_nj.to_bits(), 0.0f64.to_bits());
                    assert_eq!(s.checksum, FNV_OFFSET_BASIS);
                }
                other => panic!("expected Summary, got {other:?}"),
            }
        });
    });
}

#[test]
fn governed_empty_batches_never_divide_by_zero_or_sleep() {
    // A rate-governed session fed only empty batches: the governor sees
    // zero rows and must neither stall nor panic.
    let governed = SessionParams {
        target_rows_per_s: 1_000,
        ..bare_params()
    };
    with_server("govempty", ServerConfig::default(), 1, |socket| {
        raw_session(socket, &governed, |reader, writer| {
            let started = std::time::Instant::now();
            for _ in 0..16 {
                write_frame(writer, &Frame::Batch(Vec::new())).expect("send");
                writer.flush().expect("flush");
                match read_frame(reader).expect("ack") {
                    Frame::Batched(ack) => assert_eq!(ack.accepted, 0),
                    other => panic!("expected Batched, got {other:?}"),
                }
            }
            assert!(
                started.elapsed() < std::time::Duration::from_secs(2),
                "zero-row batches must not be paced as if they carried rows"
            );
            write_frame(writer, &Frame::Bye).expect("bye");
            writer.flush().expect("flush");
            match read_frame(reader).expect("summary") {
                Frame::Summary(s) => assert_eq!(s.ops, 0),
                other => panic!("expected Summary, got {other:?}"),
            }
        });
    });
}
