//! Await typed completions from the pooled service path — no polling loop.
//!
//! The service pattern: submit a batch asynchronously (one `OpFuture` per
//! operation), let the clock driver advance the event engine, then
//! `await` each completion. Nothing here ticks a cycle or polls a
//! completion buffer; the engine jumps from DRAM event to DRAM event and
//! the futures resolve in completion order.
//!
//! Run with: `cargo run --example async_replay`

use codic::core::executor::block_on;
use codic::dram::{DramGeometry, TimingParams};
use codic::{CodicOp, DeviceConfig, DevicePool, VariantId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-shard pool over 64 MB modules: the serving configuration of
    // BENCH_device.json.
    let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_refresh(false);
    let mut pool = DevicePool::new(4, &config);

    // A mixed batch on the one shared FR-FCFS path: secure-deallocation
    // zeroing rows interleaved with ordinary read/write traffic.
    let mut ops = Vec::new();
    for row in 0..32u64 {
        let addr = row * DramGeometry::ROW_BYTES;
        ops.push(CodicOp::command(VariantId::DetZero, addr));
        ops.push(CodicOp::read(addr + 64));
        ops.push(CodicOp::write(addr + 128));
    }

    // Submit async: every operation hands back a future...
    let futures = pool.submit_all_async(&ops)?;
    // ...the clock driver resolves them all (event-driven, in parallel
    // across shards)...
    let finish_cycle = pool.drive();

    // ...and awaiting is just `await` — no tick loop, no poll loop.
    let timing = TimingParams::ddr3_1600_11();
    let total = block_on(async {
        let mut zeroed = 0u64;
        let mut energy_nj = 0.0;
        for future in futures {
            let completion = future.await;
            if completion.op.variant() == Some(VariantId::DetZero) {
                zeroed += 1;
            }
            energy_nj += completion.cost.energy_nj;
        }
        (zeroed, energy_nj)
    });

    println!(
        "batch finished at cycle {finish_cycle} ({:.1} ns of DRAM time)",
        timing.ns(finish_cycle)
    );
    println!("rows zeroed: {}", total.0);
    println!("accounted energy: {:.1} nJ", total.1);
    assert_eq!(total.0, 32);
    Ok(())
}
