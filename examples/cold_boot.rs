//! Cold-boot attack simulation (paper 5.2): transplant a DRAM module from
//! a victim machine and dump it — with and without CODIC self-destruction.
//!
//! Run with: `cargo run --example cold_boot`

use codic::coldboot::attack::{attack_protected, attack_unprotected, AttackScenario};
use codic::coldboot::latency::destruction_time_ms;
use codic::coldboot::DestructionMechanism;

fn main() {
    let scenario = AttackScenario::default();
    println!(
        "scenario: {}s power-off at {} C, 1 GB module",
        scenario.off_seconds, scenario.temperature_c
    );

    let unprotected = attack_unprotected(&scenario);
    println!(
        "unprotected module: attacker recovers {:.1}% of memory",
        unprotected.recovered_fraction * 100.0
    );

    let protected = attack_protected(&scenario);
    println!(
        "CODIC self-destruction: attacker recovers {:.1}% (blocked during sweep: {})",
        protected.recovered_fraction * 100.0,
        protected.blocked_by_self_destruction
    );
    assert_eq!(protected.recovered_fraction, 0.0);

    println!("\ndestruction sweep time for a 1 GB module:");
    for m in DestructionMechanism::ALL {
        if m == DestructionMechanism::Tcg {
            continue; // firmware zeroing is not a power-on sweep
        }
        println!("  {:10} {:.2} ms", m.name(), destruction_time_ms(m, 1024));
    }
}
