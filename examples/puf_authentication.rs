//! Device authentication with the CODIC-sig PUF (paper 5.1): enroll a
//! low-cost IoT device once, verify it later, and show an impostor device
//! failing the same challenge.
//!
//! Run with: `cargo run --example puf_authentication`

use codic::puf::auth::{enroll, enroll_many, verify};
use codic::puf::mechanisms::{CodicSigPuf, Environment, PufMechanism};
use codic::puf::population::paper_population;
use codic::puf::Challenge;

fn main() {
    let population = paper_population(0xC0D1C);
    let genuine = &population[0].chips[0];
    let impostor = &population[4].chips[3];

    // Enrollment: the verifier evaluates one challenge on the genuine
    // device and stores the expected response.
    let challenge = Challenge::segment(12);
    let enrollment = enroll(&CodicSigPuf, genuine, challenge, &Environment::nominal());
    println!(
        "enrolled chip {} with a {}-cell response to segment {:#x}",
        genuine.id,
        enrollment.expected.len(),
        challenge.segment_addr
    );

    // Verification: exact-match, no filtering (paper: FRR 0.64%, FAR 0%).
    let ok = verify(
        &CodicSigPuf,
        genuine,
        &enrollment,
        &Environment::nominal(),
        1,
    );
    println!("genuine device verifies: {ok}");
    assert!(ok);

    let fake = verify(
        &CodicSigPuf,
        impostor,
        &enrollment,
        &Environment::nominal(),
        2,
    );
    println!("impostor device verifies: {fake}");
    assert!(!fake);

    // A real verifier enrolls a whole challenge set up front; the batch
    // path evaluates the responses in parallel.
    let challenge_set: Vec<Challenge> = (20..28).map(Challenge::segment).collect();
    let enrollments = enroll_many(
        &CodicSigPuf,
        genuine,
        &challenge_set,
        &Environment::nominal(),
    );
    let verified = enrollments
        .iter()
        .enumerate()
        .filter(|(i, e)| {
            verify(
                &CodicSigPuf,
                genuine,
                e,
                &Environment::nominal(),
                100 + *i as u64,
            )
        })
        .count();
    println!(
        "batch-enrolled {} challenges; genuine device verified {verified}/{}",
        enrollments.len(),
        enrollments.len()
    );

    // Even at 85 C the response barely moves.
    let hot = Environment {
        temperature_c: 85.0,
        aging_hours: 0.0,
    };
    let response = CodicSigPuf.evaluate(genuine, &challenge, &hot, 3);
    println!(
        "Jaccard similarity of the 85 C response to the enrolled one: {:.3}",
        response.jaccard(&enrollment.expected)
    );
}
