//! Quickstart: program a CODIC variant through the mode registers, run it
//! through the analog circuit simulator, and classify what it does.
//!
//! Run with: `cargo run --example quickstart`

use codic::circuit::{CircuitParams, CircuitSim};
use codic::core::classify::classify;
use codic::core::library;
use codic::core::mode_register::ModeRegisterFile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a CODIC variant from the paper's Table 1.
    let variant = library::codic_sig();
    println!("variant: {variant}");

    // 2. Program it the way the memory controller would: 10-bit mode
    //    registers written over MRS commands (paper 4.2.2).
    let mut registers = ModeRegisterFile::new();
    let mrs_commands = registers.program(&variant);
    println!("programmed with {mrs_commands} MRS commands");
    assert_eq!(&registers.schedule()?, variant.schedule());

    // 3. Simulate the analog circuit executing the command.
    let mut sim = CircuitSim::new(CircuitParams::default());
    sim.set_cell_bit(true); // the cell holds a 1 before the command
    let waveform = sim.run(variant.schedule());
    println!("\n{}", waveform.ascii_chart(72));
    println!("terminal state: {}", waveform.outcome());

    // 4. Classify the variant's functionality.
    let class = classify(&variant, &CircuitParams::default());
    println!("functional class: {class}");
    println!("destroys contents: {}", class.is_destructive());
    Ok(())
}
