//! Serve a recorded trace over a Unix socket and verify the completion
//! stream — the trace-replay serving layer end to end, in one process.
//!
//! A `ReplayServer` thread owns the listener; the client plays a
//! deterministic mixed secure-deallocation / cold-boot trace in framed
//! batches, streams typed completions back (finish cycle + accounted
//! energy, in completion order), and then replays the same discipline in
//! process to prove the served stream bit-identical.
//!
//! Run with: `cargo run --release --example replay_service`

use codic_server::client::{replay, verify_against_reference};
use codic_server::proto::SessionParams;
use codic_server::server::{ReplayServer, ServerConfig};
use codic_server::trace::generate_mixed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let socket = std::env::temp_dir().join(format!("codic-example-{}.sock", std::process::id()));
    let server = ReplayServer::bind(&socket, ServerConfig::default())?;
    let serving = std::thread::spawn(move || server.serve_connections(1));

    // 32k operations: zeroing bursts, destruction segments, clone
    // baselines, and ordinary reads/writes over a 64 MiB module.
    let ops = generate_mixed(32_768, 8192, 1);
    let batch = 1024;
    let report = replay(&socket, &SessionParams::defaults(), &ops, batch)?;
    serving.join().expect("server thread")?;

    verify_against_reference(&report, &ops, batch)?;

    let s = &report.summary;
    println!(
        "served {} ops ({} row ops) over {}",
        s.ops,
        s.row_ops,
        socket.display()
    );
    println!(
        "max finish cycle {} | energy {:.2} mJ | checksum {:#018x}",
        s.max_finish_cycle,
        s.total_energy_nj * 1e-6,
        report.checksum
    );
    println!(
        "host time {:.3} s -> {:.0} rows/s served (verified bit-identical)",
        report.host_seconds,
        report.rows_per_s()
    );
    Ok(())
}
