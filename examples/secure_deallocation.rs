//! Secure deallocation (paper Appendix A): run the malloc stressor under
//! software zeroing and the three hardware mechanisms.
//!
//! Run with: `cargo run --release --example secure_deallocation`

use codic::secdealloc::mechanism::ZeroingMechanism;
use codic::secdealloc::sim::single_core_comparison;
use codic::secdealloc::Benchmark;

fn main() {
    let comparison = single_core_comparison(Benchmark::Malloc, 60, 7);
    println!("malloc stressor, single core (vs software zeroing):");
    for m in ZeroingMechanism::HARDWARE {
        println!(
            "  {:10} speedup {:+.1}%  energy savings {:+.1}%",
            m.name(),
            (comparison.speedup(m) - 1.0) * 100.0,
            comparison.energy_savings(m) * 100.0
        );
    }
    let codic = comparison.speedup(ZeroingMechanism::Codic);
    assert!(codic > comparison.speedup(ZeroingMechanism::LisaClone));
    println!("\nCODIC-det zeroes a freed row with a single in-DRAM command,");
    println!("so it beats both copy-based mechanisms and software zeroing.");
}
