//! Explore the 300^4 CODIC variant space (paper 4.1.3): sample random
//! signal-timing programs, classify them in parallel with the batched
//! engine, and sweep a small device population for its fastest reliable
//! activation (paper 5.3.2).
//!
//! Run with: `cargo run --release --example variant_explorer`

use std::collections::BTreeMap;

use codic::circuit::CircuitParams;
use codic::core::classify::classify_all;
use codic::core::optimize::fastest_reliable_activations;
use codic::core::variant::CodicVariant;
use codic::core::variant_space;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!(
        "variant space: {} pulse programs per signal, {} four-signal variants",
        variant_space::pulses_per_signal(),
        variant_space::total_variants()
    );
    let mut rng = SmallRng::seed_from_u64(0xC0D1C);
    let params = CircuitParams::default();
    let samples = 200;
    let variants: Vec<CodicVariant> = (0..samples)
        .map(|_| variant_space::random_variant(&mut rng, 0.35))
        .collect();
    let classes = classify_all(&variants, &params);
    let mut census: BTreeMap<String, u32> = BTreeMap::new();
    for class in &classes {
        *census.entry(class.to_string()).or_default() += 1;
    }
    println!("\nfunctional census of {samples} random variants:");
    for (class, count) in census {
        println!("  {count:4}  {class}");
    }
    println!("\n(The paper notes most variants repeat a handful of fundamental");
    println!("behaviours; the interesting ones differ in the relative signal order.)");

    // Custom latency optimization (paper 5.3.2) across a device spread:
    // fast, nominal, and slow access transistors, optimized in parallel.
    let devices = [
        CircuitParams {
            g_access: 2.0e-4,
            ..CircuitParams::default()
        },
        CircuitParams::default(),
        CircuitParams {
            g_access: 4.0e-5,
            ..CircuitParams::default()
        },
    ];
    println!("\nfastest reliable activation per device (wl->sense gap):");
    for ((variant, gap), device) in fastest_reliable_activations(&devices).iter().zip(&devices) {
        println!(
            "  g_access {:.1e} S -> gap {gap} ns ({})",
            device.g_access,
            variant.name()
        );
    }
}
