//! Explore the 300^4 CODIC variant space (paper 4.1.3): sample random
//! signal-timing programs and classify the functionality each implements.
//!
//! Run with: `cargo run --release --example variant_explorer`

use std::collections::BTreeMap;

use codic::circuit::CircuitParams;
use codic::core::classify::classify;
use codic::core::variant_space;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!(
        "variant space: {} pulse programs per signal, {} four-signal variants",
        variant_space::pulses_per_signal(),
        variant_space::total_variants()
    );
    let mut rng = SmallRng::seed_from_u64(0xC0D1C);
    let params = CircuitParams::default();
    let mut census: BTreeMap<String, u32> = BTreeMap::new();
    let samples = 200;
    for _ in 0..samples {
        let v = variant_space::random_variant(&mut rng, 0.35);
        let class = classify(&v, &params);
        *census.entry(class.to_string()).or_default() += 1;
    }
    println!("\nfunctional census of {samples} random variants:");
    for (class, count) in census {
        println!("  {count:4}  {class}");
    }
    println!("\n(The paper notes most variants repeat a handful of fundamental");
    println!("behaviours; the interesting ones differ in the relative signal order.)");
}
