//! Facade crate re-exporting the full CODIC reproduction workspace.
pub use codic_circuit as circuit;
pub use codic_coldboot as coldboot;
pub use codic_core as core;
pub use codic_dram as dram;
pub use codic_nist as nist;
pub use codic_power as power;
pub use codic_puf as puf;
pub use codic_secdealloc as secdealloc;
