//! Facade crate for the CODIC reproduction workspace.
//!
//! Besides re-exporting every workspace crate, this crate's root is the
//! **unified service API**: one typed command path from use case to
//! cycle-level controller, as the paper's §4.4 controlled interface
//! prescribes. The full layer map — including the trace-replay serving
//! layer (`codic-server`) that runs this stack behind a Unix socket —
//! and the reference walkthrough of one operation's life live in
//! `docs/ARCHITECTURE.md`; the serving wire format is specified in
//! `docs/PROTOCOL.md`.
//!
//! Policy checks run *before* an operation is enqueued — a rejected
//! [`CodicOp`] never reaches the command bus — and completions come back
//! typed, with the finishing cycle and the accounted occupancy and
//! energy cost. Completions are either drained
//! ([`CodicDevice::take_completions`]) or awaited: [`OpFuture`] is a std
//! `Future` resolved by the clock driver
//! ([`DevicePool::drive`] or the per-device step/run functions), with
//! [`block_on`] as the offline-friendly mini-executor.
//!
//! # Example
//!
//! ```
//! use codic::{CodicDevice, CodicOp, DeviceConfig, VariantId};
//! use codic::dram::{DramGeometry, TimingParams};
//!
//! let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
//!     .with_safe_range(0..1 << 20)
//!     .with_refresh(false);
//! let mut device = CodicDevice::new(config);
//!
//! // Zero two rows through the typed service path.
//! let ops = [
//!     CodicOp::command(VariantId::DetZero, 0),
//!     CodicOp::command(VariantId::DetZero, 8192),
//! ];
//! let outcome = device.execute_all(&ops).unwrap();
//! assert_eq!(outcome.ops(), 2);
//! assert!(outcome.energy_nj > 0.0);
//!
//! // Destructive commands outside the safe range never reach the bus.
//! assert!(device.submit(CodicOp::command(VariantId::DetZero, 1 << 30)).is_err());
//! ```

pub use codic_circuit as circuit;
pub use codic_coldboot as coldboot;
pub use codic_core as core;
pub use codic_dram as dram;
pub use codic_nist as nist;
pub use codic_power as power;
pub use codic_puf as puf;
pub use codic_secdealloc as secdealloc;

pub use codic_core::device::{
    BatchOutcome, CodicDevice, DeviceConfig, OpCompletion, OpCost, OpToken, SweepReport,
};
pub use codic_core::error::CodicError;
pub use codic_core::executor::{block_on, OpFuture};
pub use codic_core::ops::{CodicOp, InDramMechanism, RowRegion, VariantId};
pub use codic_core::pool::{DevicePool, PoolOutcome, PoolToken};

/// Compiles and runs the README's code snippets as doctests, so the
/// front-page examples can never drift from the live API again.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
