//! Cross-crate integration tests: each exercises a full pipeline spanning
//! several crates, mirroring how the paper's experiments compose the
//! substrate, the simulators, and the applications.

use codic::circuit::{CircuitParams, CircuitSim, SenseOutcome};
use codic::core::classify::{classify, OperationClass};
use codic::core::library;

#[test]
fn mode_registers_drive_the_circuit_to_the_documented_outcome() {
    // MRS programming (core) -> schedule -> analog simulation (circuit).
    let mut registers = codic::core::mode_register::ModeRegisterFile::new();
    registers.program(&library::codic_det_zero());
    let schedule = registers.schedule().expect("valid registers");
    let mut sim = CircuitSim::new(CircuitParams::default());
    sim.set_cell_bit(true);
    assert_eq!(sim.run(&schedule).outcome(), SenseOutcome::RestoredZero);
}

#[test]
fn every_table1_variant_classifies_and_costs_consistently() {
    // circuit + core + dram + power together.
    let timing = codic::dram::TimingParams::ddr3_1600_11();
    let energy = codic::power::EnergyModel::paper_default();
    for variant in library::table2_variants() {
        let class = classify(&variant, &CircuitParams::default());
        let cost = codic::core::latency::command_cost(&variant, class, &timing, &energy);
        assert!(cost.latency_ns == 35.0 || cost.latency_ns == 13.0);
        assert!(cost.energy_nj > 17.0 && cost.energy_nj < 17.5);
    }
}

#[test]
fn codic_controller_guards_the_puf_range_end_to_end() {
    use codic::{CodicOp, VariantId};
    let mut controller = codic::core::interface::CodicController::new(0..8192);
    let class = classify(&VariantId::Sig.variant(), &CircuitParams::default());
    assert_eq!(class, OperationClass::SignaturePreparation);
    assert_eq!(class, VariantId::Sig.class(), "typed class matches circuit");
    controller.install(VariantId::Sig);
    assert!(controller
        .issue(CodicOp::command(VariantId::Sig, 0))
        .is_ok());
    assert!(
        controller
            .issue(CodicOp::command(VariantId::Sig, 1 << 30))
            .is_err(),
        "destructive op outside range"
    );
}

#[test]
fn all_three_use_cases_issue_through_one_device_handle() {
    // The §4.4 service path end-to-end: the PUF, secure-deallocation, and
    // cold-boot mechanisms all plan typed ops and run on the same device.
    use codic::dram::{DramGeometry, TimingParams};
    use codic::{CodicDevice, DeviceConfig, InDramMechanism, RowRegion};

    let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_refresh(false);
    let mut device = CodicDevice::new(config);

    let mechanisms: [&dyn InDramMechanism; 3] = [
        &codic::puf::CodicSigPuf,
        &codic::secdealloc::ZeroingMechanism::Codic,
        &codic::coldboot::DestructionMechanism::LisaClone,
    ];
    let mut total = 0;
    for (i, m) in mechanisms.iter().enumerate() {
        let region = RowRegion::new(i as u64 * 64 * 8192, 8);
        let outcome = device.run_mechanism(*m, region).unwrap();
        assert_eq!(outcome.ops(), 8, "{}", m.name());
        assert!(outcome.energy_nj > 0.0);
        total += outcome.ops() as u64;
    }
    assert_eq!(device.stats().row_ops, total);
    // The LISA plan was charged its extra movement energy.
    let lisa_cost = codic::power::accounting::row_op_cost(
        codic::dram::RowOpKind::LisaClone,
        device.timing(),
        device.energy_model(),
    );
    assert!(lisa_cost.energy_nj > 2.0 * device.energy_model().act_pre_nj());
}

#[test]
fn pooled_serving_path_matches_single_device_results() {
    use codic::dram::{DramGeometry, TimingParams};
    use codic::{CodicOp, DeviceConfig, DevicePool, VariantId};

    let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_refresh(false);
    let ops: Vec<CodicOp> = (0..64)
        .map(|i| CodicOp::command(VariantId::DetZero, i * DramGeometry::ROW_BYTES))
        .collect();
    let one = DevicePool::new(1, &config).execute_all(&ops).unwrap();
    let four = DevicePool::new(4, &config).execute_all(&ops).unwrap();
    assert_eq!(one.ops(), four.ops());
    assert!((one.energy_nj() - four.energy_nj()).abs() < 1e-6);
    assert!(
        four.finish_cycle() < one.finish_cycle(),
        "sharding must cut DRAM time: {} vs {}",
        four.finish_cycle(),
        one.finish_cycle()
    );
}

#[test]
fn async_serving_path_awaits_completions_end_to_end() {
    // submit_all_async -> drive (event engine, parallel shards) -> await:
    // no tick loop, no completion polling anywhere.
    use codic::core::executor::block_on;
    use codic::dram::{DramGeometry, TimingParams};
    use codic::{CodicOp, DeviceConfig, DevicePool, VariantId};

    let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_refresh(false);
    let mut pool = DevicePool::new(2, &config);
    // Row ops and plain read/write traffic through the one FR-FCFS path.
    let mut ops = Vec::new();
    for row in 0..16u64 {
        let addr = row * DramGeometry::ROW_BYTES;
        ops.push(CodicOp::command(VariantId::DetZero, addr));
        ops.push(CodicOp::read(addr + 64));
    }
    let futures = pool.submit_all_async(&ops).unwrap();
    let finish = pool.drive();
    assert!(finish > 0);
    let completions = block_on(async {
        let mut out = Vec::new();
        for f in futures {
            out.push(f.await);
        }
        out
    });
    assert_eq!(completions.len(), 32);
    for (completion, op) in completions.iter().zip(&ops) {
        assert_eq!(completion.op, *op, "futures preserve submission order");
        assert!(completion.cost.energy_nj > 0.0);
    }
    let reads: u64 = (0..pool.shards())
        .map(|s| pool.device(s).stats().reads)
        .sum();
    let row_ops: u64 = (0..pool.shards())
        .map(|s| pool.device(s).stats().row_ops)
        .sum();
    assert_eq!((reads, row_ops), (16, 16), "one scheduler served both");
}

#[test]
fn destruction_beats_firmware_by_orders_of_magnitude() {
    use codic::coldboot::latency::destruction_time_ms;
    use codic::coldboot::DestructionMechanism;
    let tcg = destruction_time_ms(DestructionMechanism::Tcg, 64);
    let codic = destruction_time_ms(DestructionMechanism::Codic, 64);
    assert!(tcg / codic > 100.0, "TCG {tcg} ms vs CODIC {codic} ms");
}

#[test]
fn puf_stream_passes_core_nist_tests_after_whitening() {
    // puf + nist.
    let population = codic::puf::population::paper_population(0x7E57);
    let bits = codic::puf::bitstream::whitened_stream(
        &population,
        &codic::puf::mechanisms::CodicSigPuf,
        &codic::puf::mechanisms::Environment::nominal(),
        60_000,
    );
    let monobit = codic::nist::monobit::test(&bits);
    let runs = codic::nist::runs::test(&bits);
    let serial = codic::nist::serial::test(&bits);
    assert!(monobit.passed(), "monobit p = {}", monobit.p_value);
    assert!(runs.passed(), "runs p = {}", runs.p_value);
    assert!(serial.passed(), "serial p = {}", serial.p_value);
}

#[test]
fn secure_deallocation_orders_mechanisms_like_the_paper() {
    use codic::secdealloc::mechanism::ZeroingMechanism;
    use codic::secdealloc::sim::single_core_comparison;
    let c = single_core_comparison(codic::secdealloc::Benchmark::Shell, 25, 3);
    let codic_s = c.speedup(ZeroingMechanism::Codic);
    let lisa_s = c.speedup(ZeroingMechanism::LisaClone);
    assert!(codic_s >= lisa_s, "CODIC {codic_s} vs LISA {lisa_s}");
    assert!(codic_s > 1.0);
}

#[test]
fn self_destruct_module_survives_a_simulated_cold_boot() {
    use codic::coldboot::attack::{attack_protected, AttackScenario};
    let result = attack_protected(&AttackScenario {
        off_seconds: 0.1,
        temperature_c: -40.0, // chilled module: worst case for the victim
        total_rows: 8192,
    });
    assert_eq!(result.recovered_fraction, 0.0);
}

#[test]
fn sigsa_montecarlo_consistent_with_puf_minority_rates() {
    // The circuit-level flip rate and the chip model's minority fractions
    // live in the same 0.01%-0.22% decade (paper 6.1, footnote 7).
    let stats = codic::circuit::montecarlo::SigsaExperiment {
        trials: 30_000,
        ..Default::default()
    }
    .run();
    let pct = stats.flip_pct();
    assert!(pct < 0.25, "flip rate {pct}% out of the paper's range");
}
