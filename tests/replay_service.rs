//! The serving stack from the facade's point of view: the `codic` crate
//! provides the device pool, `codic-server` the transport, and the two
//! must agree bit-for-bit on a replayed trace.

use codic::{CodicOp, DevicePool};
use codic_server::client::{replay, verify_against_reference};
use codic_server::proto::SessionParams;
use codic_server::server::{ReplayServer, ServerConfig};
use codic_server::trace::generate_mixed;

#[test]
fn facade_pool_and_replay_server_agree_on_a_served_trace() {
    let ops = generate_mixed(8_192, 8192, 77);
    let batch = 512;
    let socket = std::env::temp_dir().join(format!("codic-facade-{}.sock", std::process::id()));
    let server = ReplayServer::bind(&socket, ServerConfig::default()).expect("bind");
    let serving = std::thread::spawn(move || server.serve_connections(1).expect("serve"));
    let report = replay(&socket, &SessionParams::defaults(), &ops, batch).expect("session");
    serving.join().expect("server thread");
    verify_against_reference(&report, &ops, batch).expect("bit-identical to the reference");

    // Cross-check a served aggregate against the facade's own pool: the
    // row-operation count the summary reports equals what the facade's
    // typed command set says the trace contains.
    let row_ops = ops
        .iter()
        .filter(|op: &&CodicOp| op.row_op_kind().is_some())
        .count() as u64;
    assert_eq!(report.summary.row_ops, row_ops);

    // And the direct facade-side run reproduces the served energy total.
    let config = ServerConfig::device_config(&report.params);
    let mut pool = DevicePool::new(report.params.shards as usize, &config);
    let mut futures = Vec::new();
    for chunk in ops.chunks(batch) {
        futures.extend(pool.submit_all_async(chunk).expect("in range"));
    }
    pool.drive();
    let direct_energy: f64 = futures
        .iter_mut()
        .map(|f| f.try_take().expect("idle").cost.energy_nj)
        .sum();
    assert!((report.summary.total_energy_nj - direct_energy).abs() < 1e-6);
}
