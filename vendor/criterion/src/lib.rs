//! Minimal offline stand-in for `criterion`.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! straightforward wall-clock protocol: one untimed warm-up iteration, then
//! up to `sample_size` timed iterations bounded by a per-benchmark time
//! budget, reporting min / median / mean. Results are also appended to
//! `target/criterion-shim.json` (one JSON object per line) so scripts can
//! collect them.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One benchmark's collected samples, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct SampleStats {
    /// Benchmark identifier.
    pub id: String,
    /// Per-iteration wall-clock times in nanoseconds, sorted ascending.
    pub samples_ns: Vec<f64>,
}

impl SampleStats {
    /// Fastest observed iteration in nanoseconds.
    #[must_use]
    pub fn min_ns(&self) -> f64 {
        self.samples_ns.first().copied().unwrap_or(f64::NAN)
    }

    /// Median iteration time in nanoseconds.
    #[must_use]
    pub fn median_ns(&self) -> f64 {
        let n = self.samples_ns.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            self.samples_ns[n / 2]
        } else {
            0.5 * (self.samples_ns[n / 2 - 1] + self.samples_ns[n / 2])
        }
    }

    /// Mean iteration time in nanoseconds.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return f64::NAN;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Drives timed iterations for one benchmark.
pub struct Bencher<'a> {
    stats: &'a mut SampleStats,
    sample_size: usize,
    time_budget: Duration,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly, timing each call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Untimed warm-up.
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.stats.samples_ns.push(t0.elapsed().as_nanos() as f64);
            if budget_start.elapsed() > self.time_budget && self.stats.samples_ns.len() >= 2 {
                break;
            }
        }
        self.stats
            .samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    time_budget: Duration,
    results: Vec<SampleStats>,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(20);
        Criterion {
            sample_size,
            time_budget: Duration::from_secs(10),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the maximum number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.time_budget = budget;
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut stats = SampleStats {
            id: id.to_string(),
            samples_ns: Vec::new(),
        };
        {
            let mut b = Bencher {
                stats: &mut stats,
                sample_size: self.sample_size,
                time_budget: self.time_budget,
            };
            f(&mut b);
        }
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples)",
            human(stats.min_ns()),
            human(stats.median_ns()),
            human(stats.mean_ns()),
            stats.samples_ns.len()
        );
        self.append_json(&stats);
        self.results.push(stats);
        self
    }

    /// All results collected so far.
    #[must_use]
    pub fn results(&self) -> &[SampleStats] {
        &self.results
    }

    fn append_json(&self, stats: &SampleStats) {
        use std::io::Write;
        let line = format!(
            "{{\"id\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}\n",
            stats.id,
            stats.min_ns(),
            stats.median_ns(),
            stats.mean_ns(),
            stats.samples_ns.len()
        );
        let path = std::path::Path::new("target");
        if path.is_dir() {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path.join("criterion-shim.json"))
            {
                let _ = file.write_all(line.as_bytes());
            }
        }
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(5)
            .bench_function("shim/self_test", |b| b.iter(|| black_box(40 + 2)));
        let stats = &c.results()[0];
        assert_eq!(stats.id, "shim/self_test");
        assert!(!stats.samples_ns.is_empty());
        assert!(stats.min_ns() <= stats.median_ns());
        assert!(stats.median_ns().is_finite());
    }

    #[test]
    fn median_of_even_sample_count_interpolates() {
        let s = SampleStats {
            id: "x".into(),
            samples_ns: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(s.median_ns(), 2.5);
        assert_eq!(s.mean_ns(), 2.5);
        assert_eq!(s.min_ns(), 1.0);
    }
}
