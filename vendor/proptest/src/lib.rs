//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset the CODIC workspace uses: the [`proptest!`] macro
//! with `#![proptest_config(ProptestConfig::with_cases(n))]`, range / tuple
//! / [`collection::vec`] / [`option::of`] strategies, `any::<T>()`,
//! `prop_map` / `prop_filter`, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test seed; there is
//! no shrinking — a failing case reports its inputs via the assertion
//! message instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving test-case production (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (zero is remapped).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive per-test seeds from test names.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator. `generate` returns `None` when a `prop_filter`
/// rejects the draw; the runner retries with fresh randomness.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one candidate value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`; `reason` is reported if generation
    /// starves.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                Some((self.start as i128 + draw as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = u128::from(rng.next_u64()) % span;
                Some((lo as i128 + draw as i128) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                Some(self.start + (rng.unit_f64() as $t) * (self.end - self.start))
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Types with a default whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Whole-domain strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// A strategy always yielding a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Yields `None` about 20 % of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            if rng.next_u64().is_multiple_of(5) {
                Some(None)
            } else {
                self.inner.generate(rng).map(Some)
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths accepted by [`vec()`]: a fixed size or a size range.
    pub trait SizeRange {
        /// Picks a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Strategy producing vectors of `elem` draws with a length from
    /// `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(elem: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { elem, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Maximum generation attempts (filter rejections) per case before the
/// runner gives up.
pub const MAX_REJECTS_PER_CASE: u32 = 1000;

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting instead of panicking so
/// the runner can attach case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(), line!(), stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed at {}:{}: {} == {} ({:?} vs {:?})",
                file!(), line!(), stringify!($a), stringify!($b), lhs, rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed at {}:{}: {} == {} ({:?} vs {:?}): {}",
                file!(), line!(), stringify!($a), stringify!($b), lhs, rhs, format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!(
                "assertion failed at {}:{}: {} != {} (both {:?})",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                lhs
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new(
                0xC0D1_C000_0000_0000u64 ^ $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)))
            );
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < config.cases {
                // Generate every argument, retrying the whole case when a
                // filter rejects a draw.
                $(
                    let generated = $crate::Strategy::generate(&$strat, &mut rng);
                    let Some($arg) = generated else {
                        rejects += 1;
                        assert!(
                            rejects < $crate::MAX_REJECTS_PER_CASE * config.cases,
                            "too many filter rejections in {}",
                            stringify!($name)
                        );
                        continue;
                    };
                )+
                case += 1;
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!("property {} failed on case {case}: {message}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng).unwrap();
            assert!((3..9).contains(&v));
            let (a, b) = ((0u16..4), (10i32..20)).generate(&mut rng).unwrap();
            assert!(a < 4 && (10..20).contains(&b));
        }
    }

    #[test]
    fn filter_and_map_compose() {
        let strat = (0u8..10, 0u8..10)
            .prop_filter("a < b", |(a, b)| a < b)
            .prop_map(|(a, b)| b - a);
        let mut rng = crate::TestRng::new(2);
        let mut produced = 0;
        for _ in 0..200 {
            if let Some(d) = strat.generate(&mut rng) {
                assert!(d >= 1);
                produced += 1;
            }
        }
        assert!(produced > 50, "filter starved: {produced}");
    }

    #[test]
    fn collection_vec_honors_size() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..5, 2..6)
                .generate(&mut rng)
                .unwrap();
            assert!((2..6).contains(&v.len()));
            let fixed = crate::collection::vec(any::<bool>(), 7usize)
                .generate(&mut rng)
                .unwrap();
            assert_eq!(fixed.len(), 7);
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut rng = crate::TestRng::new(4);
        let strat = crate::option::of(0u8..3);
        let draws: Vec<_> = (0..200).filter_map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assumes(x in 0u32..100, flag in any::<bool>()) {
            prop_assume!(x > 0);
            prop_assert!(x < 100, "x = {x}");
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
            let _ = flag;
        }
    }
}
