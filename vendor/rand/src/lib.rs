//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so this vendored crate
//! provides exactly the surface the CODIC workspace consumes:
//!
//! - [`rngs::SmallRng`]: xoshiro256++ (the algorithm `rand` 0.8 uses for
//!   `SmallRng` on 64-bit targets), seeded with splitmix64 like
//!   `SeedableRng::seed_from_u64`;
//! - [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! - [`Rng::gen`] for the primitive types, [`Rng::gen_range`] over integer
//!   and float ranges, and [`Rng::gen_bool`].
//!
//! Distributions match the upstream conventions (`f64` sampled as 53 random
//! mantissa bits in `[0, 1)`), so statistical calibrations carry over; the
//! exact bit streams are not guaranteed to match upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as in rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = u128::from(rng.next_u64()) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding `state` with splitmix64 (the upstream
    /// `seed_from_u64` construction).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the splitmix64 generator.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The non-cryptographic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast RNG: xoshiro256++ (what `rand` 0.8 uses for
    /// `SmallRng` on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[8 * i..8 * (i + 1)]);
                *word = u64::from_le_bytes(bytes);
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6C62_272E_07BB_0142,
                    0x7F4A_7C15_9E37_79B9,
                    0x0142_6C62_272E_07BB,
                ];
            }
            SmallRng { s }
        }
    }

    /// Alias so code written against `StdRng` also compiles.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
