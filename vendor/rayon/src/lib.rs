//! Minimal offline stand-in for `rayon`.
//!
//! Implements the data-parallel subset the CODIC workspace uses — eager,
//! order-preserving `into_par_iter().map(..)` pipelines over scoped OS
//! threads — with the same determinism contract as real rayon *plus* a
//! stronger one: item order is always preserved, so any pure pipeline
//! produces results independent of the thread count.
//!
//! The thread count comes from `RAYON_NUM_THREADS` (read at call time, so
//! tests can vary it per run) and falls back to the machine's available
//! parallelism. Work is split into one contiguous slice per thread.

use std::ops::Range;

/// The number of worker threads parallel operations use.
///
/// Honors `RAYON_NUM_THREADS` exactly like real rayon; the variable is read
/// on every call so thread-invariance tests can toggle it between runs.
#[must_use]
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-shim worker panicked");
        (ra, rb)
    })
}

/// Applies `f` to every item of `items`, in parallel, preserving order.
///
/// This is the single primitive the eager [`ParIter`] pipeline is built on:
/// the input is split into one contiguous chunk per worker thread, each
/// thread maps its chunk, and the per-chunk outputs are re-concatenated in
/// order. Results are therefore identical for every thread count.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let outputs: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    });
    outputs.into_iter().flatten().collect()
}

/// An eager parallel iterator: combinators immediately evaluate in
/// parallel and store the (order-preserved) results.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    #[must_use]
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Keeps the items for which `f` returns true (evaluated in parallel).
    #[must_use]
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        let keep: Vec<(T, bool)> = parallel_map(self.items, |t| {
            let k = f(&t);
            (t, k)
        });
        ParIter {
            items: keep
                .into_iter()
                .filter(|(_, k)| *k)
                .map(|(t, _)| t)
                .collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let _ = parallel_map(self.items, f);
    }

    /// Collects the results in order.
    #[must_use]
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items in input order.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    #[must_use]
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Flattens nested collections, preserving order.
    #[must_use]
    pub fn flatten(self) -> ParIter<<T as IntoIterator>::Item>
    where
        T: IntoIterator,
        <T as IntoIterator>::Item: Send,
    {
        ParIter {
            items: self.items.into_iter().flatten().collect(),
        }
    }
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_inclusive_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_inclusive_par_iter!(u8, u16, u32, u64, usize, i32, i64);

/// Borrowing conversions (`par_iter`, `par_chunks`) for slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references.
    fn par_iter(&self) -> ParIter<&T>;

    /// Parallel iterator over contiguous chunks of length `chunk_size`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sum_matches_serial() {
        let s: u64 = (1u64..=10_000).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 10_000 * 10_001 / 2);
    }

    #[test]
    fn par_chunks_covers_everything() {
        let data: Vec<u32> = (0..103).collect();
        let total: u32 = data.par_chunks(10).map(|c| c.iter().sum::<u32>()).sum();
        assert_eq!(total, data.iter().sum::<u32>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let run = || -> Vec<u64> {
            (0u64..500)
                .into_par_iter()
                .map(|x| x.wrapping_mul(0x9E37_79B9))
                .collect()
        };
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let one = run();
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let four = run();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(one, four);
    }
}
